#include "ptsbe/serve/engine.hpp"

#include <atomic>
#include <optional>
#include <utility>

#include "ptsbe/common/error.hpp"
#include "ptsbe/io/ptq.hpp"

namespace ptsbe::serve {

namespace detail {

/// Monotonic terminal-state counters, shared between the engine and every
/// job handle so late cancels never reach back into a dead engine.
struct Counters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> rejected{0};
};

/// Shared state behind one JobHandle. Transitions are guarded by `mutex`;
/// the request/program/plan fields are written once at submit time and
/// read-only afterwards.
struct JobState {
  std::uint64_t id = 0;
  JobRequest request;
  std::optional<NoisyCircuit> program;
  std::shared_ptr<const ExecPlan> plan;
  bool cache_hit = false;
  std::shared_ptr<Counters> counters;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;
  std::string error;
  RunResult result;

  void finish(JobStatus terminal, std::string message = {}) {
    std::lock_guard lock(mutex);
    status = terminal;
    error = std::move(message);
    cv.notify_all();
  }
};

}  // namespace detail

const std::string& to_string(JobStatus status) {
  static const std::string kNames[] = {"queued",    "running",   "done",
                                       "failed",    "cancelled", "rejected"};
  return kNames[static_cast<std::uint8_t>(status)];
}

// ---------------------------------------------------------------------------
// JobHandle
// ---------------------------------------------------------------------------

JobHandle::JobHandle(std::shared_ptr<detail::JobState> state)
    : state_(std::move(state)) {}

std::uint64_t JobHandle::id() const noexcept { return state_->id; }

JobStatus JobHandle::status() const {
  std::lock_guard lock(state_->mutex);
  return state_->status;
}

bool JobHandle::poll() const {
  const JobStatus s = status();
  return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

const RunResult& JobHandle::wait() const {
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [this] {
    return state_->status != JobStatus::kQueued &&
           state_->status != JobStatus::kRunning;
  });
  if (state_->status != JobStatus::kDone)
    throw runtime_failure("job " + std::to_string(state_->id) + " " +
                          to_string(state_->status) +
                          (state_->error.empty() ? "" : ": " + state_->error));
  return state_->result;
}

const RunResult& JobHandle::result() const {
  std::lock_guard lock(state_->mutex);
  PTSBE_REQUIRE(state_->status == JobStatus::kDone,
                "job " + std::to_string(state_->id) + " is " +
                    to_string(state_->status) + ", not done");
  return state_->result;
}

std::string JobHandle::error() const {
  std::lock_guard lock(state_->mutex);
  return state_->error;
}

bool JobHandle::cancel() {
  std::lock_guard lock(state_->mutex);
  if (state_->status != JobStatus::kQueued) return false;
  state_->status = JobStatus::kCancelled;
  state_->error = "cancelled before execution";
  state_->cv.notify_all();
  state_->counters->cancelled.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool JobHandle::plan_cache_hit() const { return state_->cache_hit; }

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineConfig config)
    : config_(config),
      plan_cache_(config.plan_cache_capacity),
      counters_(std::make_shared<detail::Counters>()) {
  PTSBE_REQUIRE(config_.queue_capacity >= 1,
                "engine queue capacity must be at least 1");
  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

JobHandle Engine::submit(JobRequest request) {
  counters_->submitted.fetch_add(1, std::memory_order_relaxed);
  auto job = std::make_shared<detail::JobState>();
  job->counters = counters_;
  // Admission pre-check: when the engine is stopping or the queue is
  // already full, reject *before* parsing/planning — backpressure must
  // shed the expensive work too, and a doomed request must not evict live
  // plan-cache entries. (Re-checked at enqueue below: concurrent submits
  // that both pass here can still race the last slot.)
  {
    std::lock_guard lock(mutex_);
    job->id = next_id_++;
    purge_cancelled_locked();
    if (stopping_) {
      counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      job->finish(JobStatus::kRejected, "engine is shutting down");
      return JobHandle(job);
    }
    if (queue_.size() >= config_.queue_capacity) {
      counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      job->finish(JobStatus::kRejected,
                  "admission queue full (" +
                      std::to_string(config_.queue_capacity) + " jobs)");
      return JobHandle(job);
    }
  }
  job->request = std::move(request);
  JobRequest& req = job->request;
  // Clamp tenant-controlled intra-job parallelism: "threads" feeds
  // TrajectoryExecutor's pool size verbatim (0 already means hardware
  // concurrency, and records are bit-identical at every value, so the
  // clamp is invisible except in wall clock).
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (req.threads > hw) req.threads = hw;

  // Validate tenant input on the caller's thread — bad requests fail with
  // status + diagnostic and never occupy a worker slot.
  std::string cache_insert_key;  // non-empty: insert after admission
  try {
    job->program.emplace(io::parse_circuit(req.circuit_text, req.source_name));
    if (!pts::StrategyRegistry::instance().contains(req.strategy))
      throw precondition_error("unknown strategy '" + req.strategy + "'");
    const BackendPtr backend = make_backend(req.backend, req.backend_config);
    PTSBE_REQUIRE(backend->supports(*job->program),
                  "backend '" + req.backend +
                      "' does not support this program (gate set, channel "
                      "class or qubit count)");
    // Plan cache: only backends that prepare through plans participate.
    // The canonical key makes formatting-only differences between tenant
    // texts collapse onto one entry.
    if (backend->can_fork_states() && config_.plan_cache_capacity > 0) {
      const std::string key = plan_cache_key(io::write_circuit(*job->program),
                                             req.backend, req.backend_config);
      job->plan = plan_cache_.lookup(key);
      job->cache_hit = job->plan != nullptr;
      if (!job->plan) {
        job->plan =
            std::make_shared<const ExecPlan>(backend->make_plan(*job->program));
        // Deferred: only an *admitted* job may evict a live LRU entry — a
        // submit that loses the race for the last queue slot below must
        // leave the cache untouched.
        cache_insert_key = key;
      }
    }
  } catch (const std::exception& e) {
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    job->finish(JobStatus::kFailed, e.what());
    return JobHandle(job);
  }

  // FIFO admission with a hard bound: a full queue (or a stopping engine)
  // rejects with status — visible backpressure instead of hidden buffering.
  {
    std::lock_guard lock(mutex_);
    purge_cancelled_locked();
    if (stopping_) {
      counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      job->finish(JobStatus::kRejected, "engine is shutting down");
      return JobHandle(job);
    }
    if (queue_.size() >= config_.queue_capacity) {
      counters_->rejected.fetch_add(1, std::memory_order_relaxed);
      job->finish(JobStatus::kRejected,
                  "admission queue full (" +
                      std::to_string(config_.queue_capacity) + " jobs)");
      return JobHandle(job);
    }
    queue_.push_back(job);
  }
  if (!cache_insert_key.empty())
    plan_cache_.insert(cache_insert_key, job->plan);
  work_cv_.notify_one();
  return JobHandle(job);
}

void Engine::purge_cancelled_locked() {
  // Cancelled jobs are tombstones: cancel() (which holds only the job
  // mutex — handles must outlive engines) cannot touch queue_, so the
  // admission checks sweep them out here. Lock order is engine mutex_ →
  // job mutex, consistent with every other path, and the queue is
  // capacity-bounded so the sweep is O(queue_capacity).
  std::erase_if(queue_, [](const std::shared_ptr<detail::JobState>& job) {
    std::lock_guard job_lock(job->mutex);
    return job->status == JobStatus::kCancelled;
  });
}

void Engine::worker_loop() {
  while (true) {
    std::shared_ptr<detail::JobState> job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(job);
  }
}

void Engine::execute(const std::shared_ptr<detail::JobState>& job) {
  {
    std::lock_guard lock(job->mutex);
    if (job->status != JobStatus::kQueued) return;  // cancelled while queued
    job->status = JobStatus::kRunning;
  }
  try {
    const JobRequest& req = job->request;
    // The Pipeline facade is the single definition of the seeding
    // convention, which is what makes a served job bit-identical to a
    // standalone run with the same request.
    Pipeline pipeline(std::move(*job->program));
    pipeline.strategy(req.strategy, req.strategy_config)
        .backend(req.backend, req.backend_config)
        .schedule(req.schedule)
        .threads(req.threads)
        .seed(req.seed)
        .cached_plan(job->plan);
    RunResult run = pipeline.run();
    // Count before notifying: a waiter reading stats() right after wait()
    // returns must already see this job as served.
    counters_->served.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(job->mutex);
      job->result = std::move(run);
      job->status = JobStatus::kDone;
      job->cv.notify_all();
    }
  } catch (const std::exception& e) {
    counters_->failed.fetch_add(1, std::memory_order_relaxed);
    job->finish(JobStatus::kFailed, e.what());
  }
}

EngineStats Engine::stats() const {
  EngineStats out;
  out.submitted = counters_->submitted.load(std::memory_order_relaxed);
  out.served = counters_->served.load(std::memory_order_relaxed);
  out.failed = counters_->failed.load(std::memory_order_relaxed);
  out.cancelled = counters_->cancelled.load(std::memory_order_relaxed);
  out.rejected = counters_->rejected.load(std::memory_order_relaxed);
  out.plan_cache_hits = plan_cache_.hits();
  out.plan_cache_misses = plan_cache_.misses();
  {
    std::lock_guard lock(mutex_);
    // Count live queued jobs only: cancelled tombstones awaiting their
    // purge must not read as backlog to a monitoring client.
    for (const std::shared_ptr<detail::JobState>& job : queue_) {
      std::lock_guard job_lock(job->mutex);
      if (job->status == JobStatus::kQueued) ++out.queue_depth;
    }
  }
  return out;
}

}  // namespace ptsbe::serve
