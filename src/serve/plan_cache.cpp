#include "ptsbe/serve/plan_cache.hpp"

#include <sstream>

namespace ptsbe::serve {

std::string plan_cache_key(const std::string& circuit_canonical,
                           const std::string& backend,
                           const BackendConfig& config) {
  // Every knob that can change make_plan's output (or select a different
  // make_plan override) must appear here; the mps fields are included
  // defensively so a future bond-dependent plan cannot alias. Full 17
  // significant digits: the default stream precision (6) would collapse
  // distinct truncation settings onto one key.
  std::ostringstream key;
  key.precision(17);
  key << "backend=" << backend << ";fuse=" << (config.fuse_gates ? 1 : 0)
      << ";mps_max_bond=" << config.mps.max_bond
      << ";mps_trunc=" << config.mps.truncation_error << ";\n"
      << circuit_canonical;
  return key.str();
}

std::shared_ptr<const ExecPlan> PlanCache::lookup(const std::string& key) {
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void PlanCache::insert(const std::string& key,
                       std::shared_ptr<const ExecPlan> plan) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

std::uint64_t PlanCache::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

}  // namespace ptsbe::serve
