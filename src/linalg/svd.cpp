#include "ptsbe/linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ptsbe {

namespace {

/// One-sided Jacobi on a tall-or-square matrix b (m×n, m ≥ n), accumulating
/// the applied column rotations into v (n×n). On return, the columns of b are
/// mutually orthogonal and b_original = b_final · v†.
void jacobi_orthogonalize(Matrix& b, Matrix& v, int max_sweeps) {
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();
  constexpr double kEps = 1e-15;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        // 2×2 Gram block of columns (i, j).
        double alpha = 0.0, beta = 0.0;
        cplx gamma{0.0, 0.0};
        for (std::size_t r = 0; r < m; ++r) {
          const cplx bi = b(r, i);
          const cplx bj = b(r, j);
          alpha += std::norm(bi);
          beta += std::norm(bj);
          gamma += std::conj(bi) * bj;
        }
        const double off = std::abs(gamma);
        if (off <= kEps * std::sqrt(alpha * beta) || off == 0.0) continue;
        converged = false;

        // Classic Jacobi rotation, manifestly unitary (avoids the
        // catastrophic cancellation of forming eigenvectors from λ± − α):
        //   J = [[c, -s·e^{iθ}], [s·e^{-iθ}, c]],  γ = |γ|e^{iθ},
        // with t chosen as the root of t² - 2τt - 1 = 0 of smaller
        // magnitude, τ = (β - α) / (2|γ|).
        const cplx phase = gamma / off;  // e^{iθ}
        const double tau = 0.5 * (beta - alpha) / off;
        double t;
        if (tau == 0.0) {
          t = 1.0;
        } else {
          t = -std::copysign(1.0, tau) /
              (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sct = c * t;
        const cplx j00{c, 0.0};
        const cplx j01 = -sct * phase;
        const cplx j10n = sct * std::conj(phase);
        const cplx j11n{c, 0.0};

        // Apply J to the column pair of b and accumulate into v.
        for (std::size_t r = 0; r < m; ++r) {
          const cplx bi = b(r, i);
          const cplx bj = b(r, j);
          b(r, i) = bi * j00 + bj * j10n;
          b(r, j) = bi * j01 + bj * j11n;
        }
        for (std::size_t r = 0; r < n; ++r) {
          const cplx vi = v(r, i);
          const cplx vj = v(r, j);
          v(r, i) = vi * j00 + vj * j10n;
          v(r, j) = vi * j01 + vj * j11n;
        }
      }
    }
    if (converged) return;
  }
  // One more tolerance pass: accept if residual off-diagonals are tiny in
  // absolute terms (can happen for matrices with huge dynamic range).
  double max_off = 0.0, max_col = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      cplx gamma{0.0, 0.0};
      double alpha = 0.0, beta = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        alpha += std::norm(b(r, i));
        beta += std::norm(b(r, j));
        gamma += std::conj(b(r, i)) * b(r, j);
      }
      max_off = std::max(max_off, std::abs(gamma));
      max_col = std::max({max_col, alpha, beta});
    }
  PTSBE_CHECK(max_off <= 1e-9 * std::max(max_col, 1e-300),
              "Jacobi SVD failed to converge within the sweep limit");
}

}  // namespace

SvdResult svd(const Matrix& a, int max_sweeps) {
  PTSBE_REQUIRE(!a.empty(), "svd() of an empty matrix");
  const bool transposed = a.rows() < a.cols();
  Matrix b = transposed ? a.dagger() : a;  // tall: m >= n
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();
  Matrix v = Matrix::identity(n);
  jacobi_orthogonalize(b, v, max_sweeps);

  // Singular values = column norms; sort descending.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += std::norm(b(r, j));
    sigma[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Matrix u(m, n);
  Matrix vsorted(n, n);
  std::vector<double> s_sorted(n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t src = order[jj];
    s_sorted[jj] = sigma[src];
    const double inv = sigma[src] > 0.0 ? 1.0 / sigma[src] : 0.0;
    for (std::size_t r = 0; r < m; ++r) u(r, jj) = b(r, src) * inv;
    for (std::size_t r = 0; r < n; ++r) vsorted(r, jj) = v(r, src);
  }

  SvdResult out;
  out.s = std::move(s_sorted);
  if (!transposed) {
    out.u = std::move(u);
    out.vdag = vsorted.dagger();
  } else {
    // a = (b · v†)† = v · b†  ⇒  U_a = v_sorted, V_a† = u†.
    out.u = std::move(vsorted);
    out.vdag = u.dagger();
  }
  return out;
}

std::size_t truncated_rank(const std::vector<double>& s, double truncation_error,
                           std::size_t max_keep) {
  if (s.empty()) return 0;
  double total = 0.0;
  for (double v : s) total += v * v;
  if (total <= 0.0) return 1;
  const double budget = truncation_error * total;
  double discarded = 0.0;
  std::size_t keep = s.size();
  while (keep > 1) {
    const double w = s[keep - 1] * s[keep - 1];
    if (discarded + w > budget) break;
    discarded += w;
    --keep;
  }
  if (max_keep != 0) keep = std::min(keep, max_keep);
  return keep;
}

}  // namespace ptsbe
