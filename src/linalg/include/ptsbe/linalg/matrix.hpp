#pragma once

/// \file matrix.hpp
/// \brief Dense complex matrices for gate/Kraus-operator algebra.
///
/// These matrices are *small* (2^k × 2^k for k-qubit operators, or χ·d × χ·d
/// MPS bond blocks); the exponentially large simulation state lives in the
/// backend-specific containers, never here. Row-major storage,
/// `std::complex<double>` elements.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "ptsbe/common/error.hpp"

namespace ptsbe {

using cplx = std::complex<double>;

/// Dense row-major complex matrix.
class Matrix {
 public:
  /// Empty 0×0 matrix.
  Matrix() = default;

  /// rows×cols matrix initialised to zero.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

  /// rows×cols matrix from row-major values (size must match).
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<cplx> values)
      : rows_(rows), cols_(cols), data_(values) {
    PTSBE_REQUIRE(data_.size() == rows * cols,
                  "initializer size must equal rows*cols");
  }

  /// rows×cols matrix adopting `values` (row-major; size must match).
  Matrix(std::size_t rows, std::size_t cols, std::vector<cplx> values)
      : rows_(rows), cols_(cols), data_(std::move(values)) {
    PTSBE_REQUIRE(data_.size() == rows * cols,
                  "value vector size must equal rows*cols");
  }

  /// n×n identity.
  static Matrix identity(std::size_t n);

  /// rows×cols zero matrix.
  static Matrix zero(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  /// Element access (unchecked in release builds).
  cplx& operator()(std::size_t r, std::size_t c) noexcept {
    PTSBE_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const cplx& operator()(std::size_t r, std::size_t c) const noexcept {
    PTSBE_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row-major storage.
  [[nodiscard]] std::span<const cplx> data() const noexcept { return data_; }
  [[nodiscard]] std::span<cplx> data() noexcept { return data_; }

  /// Conjugate transpose.
  [[nodiscard]] Matrix dagger() const;

  /// Plain transpose (no conjugation).
  [[nodiscard]] Matrix transpose() const;

  /// Elementwise complex conjugate.
  [[nodiscard]] Matrix conj() const;

  /// Trace (square matrices only).
  [[nodiscard]] cplx trace() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max elementwise |difference| against another matrix of the same shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(cplx scalar) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, cplx scalar) noexcept { return lhs *= scalar; }
  friend Matrix operator*(cplx scalar, Matrix rhs) noexcept { return rhs *= scalar; }

  /// Matrix product.
  friend Matrix operator*(const Matrix& lhs, const Matrix& rhs);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Kronecker (tensor) product a ⊗ b.
[[nodiscard]] Matrix kron(const Matrix& a, const Matrix& b);

/// True when every element of a and b differs by at most `tol` and shapes match.
[[nodiscard]] bool approx_equal(const Matrix& a, const Matrix& b,
                                double tol = 1e-12);

/// ‖A†A − I‖_max ≤ tol (square matrices).
[[nodiscard]] bool is_unitary(const Matrix& m, double tol = 1e-10);

/// ‖A − A†‖_max ≤ tol.
[[nodiscard]] bool is_hermitian(const Matrix& m, double tol = 1e-10);

/// True if Σ_i K_i† K_i = I within tol, i.e. the set is a valid CPTP channel.
[[nodiscard]] bool is_cptp_set(std::span<const Matrix> kraus_ops,
                               double tol = 1e-10);

/// Detect whether K is a scaled unitary, K = c·U with |c|² = `probability`.
/// Returns true and fills `probability` (and `unitary` when non-null) on
/// success. This is the unitary-mixture detection the paper's §2.2 feature (2)
/// relies on: scaled-unitary Kraus operators have state-independent branch
/// probabilities.
[[nodiscard]] bool as_scaled_unitary(const Matrix& k, double& probability,
                                     Matrix* unitary = nullptr,
                                     double tol = 1e-10);

}  // namespace ptsbe
