#pragma once

/// \file svd.hpp
/// \brief Complex singular value decomposition via one-sided Jacobi.
///
/// The MPS backend truncates bond dimensions with SVDs of χd × χd blocks.
/// We implement the decomposition from scratch (no LAPACK dependency) using
/// the Hestenes one-sided Jacobi method: pairs of columns are rotated by the
/// exact eigenvector unitary of their 2×2 Gram matrix until all columns are
/// mutually orthogonal. Jacobi SVD is backward-stable and computes small
/// singular values to high relative accuracy — exactly what truncation
/// decisions need.

#include <cstddef>
#include <vector>

#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe {

/// Result of a thin SVD: A (m×n) = U (m×r) · diag(S) (r) · V† (r×n),
/// r = min(m, n), singular values sorted descending.
struct SvdResult {
  Matrix u;                    ///< Left singular vectors, m×r.
  std::vector<double> s;       ///< Singular values, descending, length r.
  Matrix vdag;                 ///< Right singular vectors (conjugated), r×n.
};

/// Compute the thin SVD of `a` by one-sided Jacobi.
///
/// \param a         Input matrix (any shape; empty is a precondition error).
/// \param max_sweeps Safety bound on Jacobi sweeps (default ample for the
///                   well-conditioned blocks MPS produces).
/// \throws invariant_error if the sweep limit is reached before convergence.
[[nodiscard]] SvdResult svd(const Matrix& a, int max_sweeps = 64);

/// Number of singular values to keep so the *discarded* squared weight is at
/// most `truncation_error` (relative to total squared weight), capped at
/// `max_keep` (0 = uncapped). Always keeps at least one value if any is
/// positive.
[[nodiscard]] std::size_t truncated_rank(const std::vector<double>& s,
                                         double truncation_error,
                                         std::size_t max_keep = 0);

}  // namespace ptsbe
