#include "ptsbe/linalg/matrix.hpp"

#include <cmath>

namespace ptsbe {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = cplx{1.0, 0.0};
  return m;
}

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out(c, r) = std::conj((*this)(r, c));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::conj() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = std::conj(data_[i]);
  return out;
}

cplx Matrix::trace() const {
  PTSBE_REQUIRE(is_square(), "trace() requires a square matrix");
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (const cplx& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  PTSBE_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "max_abs_diff() shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  PTSBE_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "operator+= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  PTSBE_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "operator-= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(cplx scalar) noexcept {
  for (cplx& v : data_) v *= scalar;
  return *this;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  PTSBE_REQUIRE(lhs.cols() == rhs.rows(), "operator* inner-dimension mismatch");
  Matrix out(lhs.rows(), rhs.cols());
  for (std::size_t r = 0; r < lhs.rows(); ++r) {
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const cplx a = lhs(r, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < rhs.cols(); ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar)
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const cplx v = a(ar, ac);
      if (v == cplx{0.0, 0.0}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br)
        for (std::size_t bc = 0; bc < b.cols(); ++bc)
          out(ar * b.rows() + br, ac * b.cols() + bc) = v * b(br, bc);
    }
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.max_abs_diff(b) <= tol;
}

bool is_unitary(const Matrix& m, double tol) {
  if (!m.is_square() || m.empty()) return false;
  return approx_equal(m.dagger() * m, Matrix::identity(m.rows()), tol);
}

bool is_hermitian(const Matrix& m, double tol) {
  if (!m.is_square() || m.empty()) return false;
  return approx_equal(m, m.dagger(), tol);
}

bool is_cptp_set(std::span<const Matrix> kraus_ops, double tol) {
  if (kraus_ops.empty()) return false;
  const std::size_t dim = kraus_ops.front().cols();
  Matrix sum(dim, dim);
  for (const Matrix& k : kraus_ops) {
    if (k.cols() != dim || k.rows() != dim) return false;
    sum += k.dagger() * k;
  }
  return approx_equal(sum, Matrix::identity(dim), tol);
}

bool as_scaled_unitary(const Matrix& k, double& probability, Matrix* unitary,
                       double tol) {
  if (!k.is_square() || k.empty()) return false;
  // K = c·U  ⇔  K†K = |c|²·I. |c|² is then tr(K†K)/dim.
  const Matrix gram = k.dagger() * k;
  const double p = gram.trace().real() / static_cast<double>(k.rows());
  if (p <= tol) return false;  // (near-)zero operator: not a usable unitary branch
  if (!approx_equal(gram, p * Matrix::identity(k.rows()), tol)) return false;
  probability = p;
  if (unitary != nullptr) {
    *unitary = k;
    *unitary *= cplx{1.0 / std::sqrt(p), 0.0};
  }
  return true;
}

}  // namespace ptsbe
