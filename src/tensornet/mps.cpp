#include "ptsbe/tensornet/mps.hpp"

#include <algorithm>
#include <cmath>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"
#include "ptsbe/linalg/svd.hpp"

namespace ptsbe {

MpsState::MpsState(unsigned num_qubits, MpsConfig config)
    : n_(num_qubits), cfg_(config) {
  PTSBE_REQUIRE(num_qubits >= 1, "MPS needs at least one qubit");
  reset();
}

void MpsState::reset() {
  t_.assign(n_, Tensor{});
  for (Tensor& tn : t_) {
    tn.dl = tn.dr = 1;
    tn.data = {cplx{1.0, 0.0}, cplx{0.0, 0.0}};  // |0⟩
  }
  center_ = 0;
  stats_ = MpsStats{};
}

std::size_t MpsState::max_bond_dim() const noexcept {
  std::size_t m = 1;
  for (const Tensor& tn : t_) m = std::max(m, tn.dr);
  return m;
}

void MpsState::shift_center_right() {
  PTSBE_ASSERT(center_ + 1 < n_);
  Tensor& a = t_[center_];
  Tensor& b = t_[center_ + 1];
  // SVD of a viewed as (dl*2) × dr.
  Matrix m(a.dl * 2, a.dr, a.data);
  SvdResult f = svd(m);
  // Drop numerically dead directions only (no physical truncation here).
  std::size_t keep = f.s.size();
  while (keep > 1 && f.s[keep - 1] <= 1e-14 * f.s[0]) --keep;
  // a ← U (left-canonical).
  a.data.assign(a.dl * 2 * keep, cplx{0.0, 0.0});
  for (std::size_t row = 0; row < a.dl * 2; ++row)
    for (std::size_t k = 0; k < keep; ++k) a.data[row * keep + k] = f.u(row, k);
  // b ← (S·V†)·b.
  const std::size_t old_dm = b.dl;
  std::vector<cplx> nb(keep * 2 * b.dr, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < keep; ++k)
    for (std::size_t mcol = 0; mcol < old_dm; ++mcol) {
      const cplx w = f.s[k] * f.vdag(k, mcol);
      if (w == cplx{0.0, 0.0}) continue;
      for (std::size_t s = 0; s < 2; ++s)
        for (std::size_t r = 0; r < b.dr; ++r)
          nb[(k * 2 + s) * b.dr + r] += w * b.data[(mcol * 2 + s) * b.dr + r];
    }
  a.dr = keep;
  b.dl = keep;
  b.data = std::move(nb);
  ++center_;
  ++stats_.svd_count;
}

void MpsState::shift_center_left() {
  PTSBE_ASSERT(center_ >= 1);
  Tensor& a = t_[center_ - 1];
  Tensor& b = t_[center_];
  // SVD of b viewed as dl × (2*dr).
  Matrix m(b.dl, 2 * b.dr, b.data);
  SvdResult f = svd(m);
  std::size_t keep = f.s.size();
  while (keep > 1 && f.s[keep - 1] <= 1e-14 * f.s[0]) --keep;
  // b ← V† (right-canonical), reshaped (keep, 2, dr).
  std::vector<cplx> nb(keep * 2 * b.dr);
  for (std::size_t k = 0; k < keep; ++k)
    for (std::size_t col = 0; col < 2 * b.dr; ++col)
      nb[k * 2 * b.dr + col] = f.vdag(k, col);
  // a ← a·(U·S).
  const std::size_t old_dm = a.dr;
  std::vector<cplx> na(a.dl * 2 * keep, cplx{0.0, 0.0});
  for (std::size_t row = 0; row < a.dl * 2; ++row)
    for (std::size_t mcol = 0; mcol < old_dm; ++mcol) {
      const cplx v = a.data[row * old_dm + mcol];
      if (v == cplx{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < keep; ++k)
        na[row * keep + k] += v * f.u(mcol, k) * f.s[k];
    }
  a.dr = keep;
  a.data = std::move(na);
  b.dl = keep;
  b.data = std::move(nb);
  --center_;
  ++stats_.svd_count;
}

void MpsState::move_center_to(unsigned site) {
  PTSBE_REQUIRE(site < n_, "site out of range");
  while (center_ < site) shift_center_right();
  while (center_ > site) shift_center_left();
}

void MpsState::apply_gate1(const Matrix& g, unsigned q) {
  Tensor& tn = t_[q];
  std::vector<cplx> out(tn.data.size());
  for (std::size_t l = 0; l < tn.dl; ++l)
    for (std::size_t sp = 0; sp < 2; ++sp)
      for (std::size_t r = 0; r < tn.dr; ++r) {
        cplx acc = g(sp, 0) * tn.data[(l * 2 + 0) * tn.dr + r] +
                   g(sp, 1) * tn.data[(l * 2 + 1) * tn.dr + r];
        out[(l * 2 + sp) * tn.dr + r] = acc;
      }
  tn.data = std::move(out);
}

void MpsState::apply_adjacent(const Matrix& g, unsigned p) {
  PTSBE_REQUIRE(p + 1 < n_, "adjacent pair out of range");
  move_center_to(p);
  const Tensor& a = t_[p];
  const Tensor& b = t_[p + 1];
  const std::size_t dl = a.dl, dm = a.dr, dr = b.dr;
  PTSBE_ASSERT(b.dl == dm);

  // Theta[l, s0, s1, r] = Σ_k a[l, s0, k] b[k, s1, r], then gate applied on
  // (s1 s0), then reshaped to rows (l, s0) × cols (s1, r) for the SVD.
  Matrix theta(dl * 2, 2 * dr);
  for (std::size_t l = 0; l < dl; ++l)
    for (std::size_t s0 = 0; s0 < 2; ++s0)
      for (std::size_t s1 = 0; s1 < 2; ++s1)
        for (std::size_t r = 0; r < dr; ++r) {
          cplx acc{0.0, 0.0};
          for (std::size_t k = 0; k < dm; ++k)
            acc += a.data[(l * 2 + s0) * dm + k] * b.data[(k * 2 + s1) * dr + r];
          theta(l * 2 + s0, s1 * dr + r) = acc;
        }
  // Gate on the physical pair: index = s1*2 + s0 (site p = LSB).
  Matrix rotated(dl * 2, 2 * dr);
  for (std::size_t l = 0; l < dl; ++l)
    for (std::size_t r = 0; r < dr; ++r)
      for (std::size_t sp0 = 0; sp0 < 2; ++sp0)
        for (std::size_t sp1 = 0; sp1 < 2; ++sp1) {
          cplx acc{0.0, 0.0};
          for (std::size_t s0 = 0; s0 < 2; ++s0)
            for (std::size_t s1 = 0; s1 < 2; ++s1)
              acc += g(sp1 * 2 + sp0, s1 * 2 + s0) * theta(l * 2 + s0, s1 * dr + r);
          rotated(l * 2 + sp0, sp1 * dr + r) = acc;
        }

  SvdResult f = svd(rotated);
  std::size_t keep = truncated_rank(f.s, cfg_.truncation_error, cfg_.max_bond);
  // Also drop numerically dead directions.
  while (keep > 1 && f.s[keep - 1] <= 1e-14 * f.s[0]) --keep;
  double discarded = 0.0;
  for (std::size_t k = keep; k < f.s.size(); ++k) discarded += f.s[k] * f.s[k];
  stats_.total_discarded_weight += discarded;
  stats_.max_bond_reached = std::max(stats_.max_bond_reached, keep);
  ++stats_.svd_count;

  Tensor& na = t_[p];
  Tensor& nb = t_[p + 1];
  na.dl = dl;
  na.dr = keep;
  na.data.assign(dl * 2 * keep, cplx{0.0, 0.0});
  for (std::size_t row = 0; row < dl * 2; ++row)
    for (std::size_t k = 0; k < keep; ++k) na.data[row * keep + k] = f.u(row, k);
  nb.dl = keep;
  nb.dr = dr;
  nb.data.assign(keep * 2 * dr, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < keep; ++k)
    for (std::size_t s1 = 0; s1 < 2; ++s1)
      for (std::size_t r = 0; r < dr; ++r)
        nb.data[(k * 2 + s1) * dr + r] = f.s[k] * f.vdag(k, s1 * dr + r);
  center_ = p + 1;
}

void MpsState::apply_gate(const Matrix& matrix,
                          std::span<const unsigned> qubits) {
  PTSBE_REQUIRE(qubits.size() == 1 || qubits.size() == 2,
                "MPS backend applies 1- and 2-qubit operators");
  for (unsigned q : qubits) PTSBE_REQUIRE(q < n_, "qubit out of range");
  if (qubits.size() == 1) {
    PTSBE_REQUIRE(matrix.rows() == 2 && matrix.cols() == 2,
                  "matrix dimension mismatch");
    apply_gate1(matrix, qubits[0]);
    return;
  }
  PTSBE_REQUIRE(matrix.rows() == 4 && matrix.cols() == 4,
                "matrix dimension mismatch");
  const unsigned a = qubits[0], b = qubits[1];
  PTSBE_REQUIRE(a != b, "two-qubit gate targets must differ");
  const unsigned lo = std::min(a, b), hi = std::max(a, b);

  // Bring `hi` down to lo+1 with swap chains, apply, and restore.
  for (unsigned p = hi - 1; p > lo; --p) apply_adjacent(gates::SWAP(), p);
  if (a == lo) {
    apply_adjacent(matrix, lo);
  } else {
    // First-listed qubit (matrix LSB) sits at the *upper* site: conjugate by
    // SWAP to exchange the matrix's qubit roles.
    apply_adjacent(gates::SWAP() * matrix * gates::SWAP(), lo);
  }
  for (unsigned p = lo + 1; p < hi; ++p) apply_adjacent(gates::SWAP(), p);
}

void MpsState::apply_circuit(const Circuit& circuit) {
  PTSBE_REQUIRE(circuit.num_qubits() <= n_, "circuit wider than the MPS");
  for (const Operation& op : circuit.ops()) {
    if (op.kind != OpKind::kGate) continue;
    apply_gate(op.matrix, op.qubits);
  }
}

double MpsState::norm2() {
  const Tensor& c = t_[center_];
  double s = 0.0;
  for (const cplx& v : c.data) s += std::norm(v);
  return s;
}

double MpsState::branch_probability(const Matrix& k,
                                    std::span<const unsigned> qubits) {
  if (qubits.size() == 1) {
    const unsigned q = qubits[0];
    move_center_to(q);
    const Tensor& tn = t_[q];
    double before = 0.0, after = 0.0;
    for (std::size_t l = 0; l < tn.dl; ++l)
      for (std::size_t r = 0; r < tn.dr; ++r) {
        const cplx v0 = tn.data[(l * 2 + 0) * tn.dr + r];
        const cplx v1 = tn.data[(l * 2 + 1) * tn.dr + r];
        before += std::norm(v0) + std::norm(v1);
        after += std::norm(k(0, 0) * v0 + k(0, 1) * v1) +
                 std::norm(k(1, 0) * v0 + k(1, 1) * v1);
      }
    PTSBE_REQUIRE(before > 1e-300, "zero-norm state");
    return after / before;
  }
  // Two-qubit: evaluate on a copy (swap chains + truncation live there).
  MpsState copy = *this;
  const double before = copy.norm2();
  copy.apply_gate(k, qubits);
  const double after = copy.norm2();
  PTSBE_REQUIRE(before > 1e-300, "zero-norm state");
  return after / before;
}

double MpsState::apply_kraus_branch(const Matrix& k,
                                    std::span<const unsigned> qubits) {
  double p = 0.0;
  if (qubits.size() == 1) {
    const unsigned q = qubits[0];
    move_center_to(q);
    const double before = norm2();
    apply_gate1(k, q);
    const double after = norm2();
    PTSBE_REQUIRE(before > 1e-300 && after > 1e-300,
                  "Kraus branch has zero probability at this state");
    p = after / before;
    const double scale = std::sqrt(before / after);
    for (cplx& v : t_[q].data) v *= scale;
  } else {
    const double before = norm2();
    apply_gate(k, qubits);
    const double after = norm2();
    PTSBE_REQUIRE(before > 1e-300 && after > 1e-300,
                  "Kraus branch has zero probability at this state");
    p = after / before;
    const double scale = std::sqrt(before / after);
    for (cplx& v : t_[center_].data) v *= scale;
  }
  return p;
}

cplx MpsState::amplitude(std::uint64_t index) const {
  std::vector<cplx> v{cplx{1.0, 0.0}};
  for (unsigned q = 0; q < n_; ++q) {
    const Tensor& tn = t_[q];
    const std::size_t s = (index >> q) & 1ULL;
    std::vector<cplx> nv(tn.dr, cplx{0.0, 0.0});
    for (std::size_t l = 0; l < tn.dl; ++l) {
      if (v[l] == cplx{0.0, 0.0}) continue;
      for (std::size_t r = 0; r < tn.dr; ++r)
        nv[r] += v[l] * tn.data[(l * 2 + s) * tn.dr + r];
    }
    v = std::move(nv);
  }
  return v[0];
}

std::vector<cplx> MpsState::to_statevector() const {
  PTSBE_REQUIRE(n_ <= 20, "to_statevector is a test helper for n <= 20");
  // Progressive contraction: rows indexed by the first q qubits, columns by
  // the open bond.
  std::vector<cplx> acc{cplx{1.0, 0.0}};
  std::size_t rows = 1, bond = 1;
  for (unsigned q = 0; q < n_; ++q) {
    const Tensor& tn = t_[q];
    std::vector<cplx> next(rows * 2 * tn.dr, cplx{0.0, 0.0});
    for (std::size_t x = 0; x < rows; ++x)
      for (std::size_t l = 0; l < bond; ++l) {
        const cplx v = acc[x * bond + l];
        if (v == cplx{0.0, 0.0}) continue;
        for (std::size_t s = 0; s < 2; ++s)
          for (std::size_t r = 0; r < tn.dr; ++r)
            next[(x + (s << q)) * tn.dr + r] +=
                v * tn.data[(l * 2 + s) * tn.dr + r];
      }
    acc = std::move(next);
    rows *= 2;
    bond = tn.dr;
  }
  return acc;
}

std::uint64_t MpsState::sample_from_canonical(RngStream& rng) const {
  PTSBE_ASSERT(center_ == 0);
  std::uint64_t shot = 0;
  std::vector<cplx> left{cplx{1.0, 0.0}};
  for (unsigned q = 0; q < n_; ++q) {
    const Tensor& tn = t_[q];
    // Candidate boundary vectors for outcome 0/1 and their weights.
    std::vector<cplx> cand[2];
    double w[2] = {0.0, 0.0};
    for (std::size_t s = 0; s < 2; ++s) {
      cand[s].assign(tn.dr, cplx{0.0, 0.0});
      for (std::size_t l = 0; l < tn.dl; ++l) {
        if (left[l] == cplx{0.0, 0.0}) continue;
        for (std::size_t r = 0; r < tn.dr; ++r)
          cand[s][r] += left[l] * tn.data[(l * 2 + s) * tn.dr + r];
      }
      for (const cplx& v : cand[s]) w[s] += std::norm(v);
    }
    const double total = w[0] + w[1];
    PTSBE_CHECK(total > 1e-300, "sampling hit a zero-probability prefix");
    const std::size_t s = rng.uniform() * total < w[0] ? 0 : 1;
    shot |= static_cast<std::uint64_t>(s) << q;
    const double inv = 1.0 / std::sqrt(w[s]);
    left = std::move(cand[s]);
    for (cplx& v : left) v *= inv;
  }
  return shot;
}

std::vector<std::uint64_t> MpsState::sample_shots(std::size_t count,
                                                  RngStream& rng) {
  // The single canonicalisation below is the cached environment shared by
  // the whole batch — the heart of the batched-execution win on the
  // tensor-network backend.
  move_center_to(0);
  std::vector<std::uint64_t> shots(count);
  for (std::size_t i = 0; i < count; ++i) shots[i] = sample_from_canonical(rng);
  return shots;
}

std::uint64_t MpsState::sample_one_uncached(RngStream& rng) {
  // Deliberately re-canonicalise the whole chain, mimicking per-sample
  // re-contraction of the tensor network (the paper's un-cached baseline).
  move_center_to(n_ - 1);
  move_center_to(0);
  return sample_from_canonical(rng);
}

}  // namespace ptsbe
