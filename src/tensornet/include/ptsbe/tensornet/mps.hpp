#pragma once

/// \file mps.hpp
/// \brief Matrix-product-state tensor-network simulator backend.
///
/// CPU stand-in for the paper's CUDA-Q `tensornet` (cuTensorNet) backend.
/// States are MPS chains with SVD-truncated bonds; two-qubit gates use the
/// TEBD scheme (merge → gate → SVD → truncate) with swap chains for
/// non-adjacent targets.
///
/// Sampling follows the perfect-sampling algorithm (qubit-by-qubit
/// conditional probabilities). The expensive step is bringing the chain to
/// right-canonical form — the analogue of the tensor-network contraction the
/// paper says "must reoccur for each sample" in the un-cached CUDA-Q flow.
/// `sample_shots` performs that canonicalisation *once* and reuses it for
/// every shot in the batch (the cached-environment fast path the paper calls
/// for); `sample_one_uncached` deliberately redoes it per shot so the
/// ablation bench can measure exactly what caching buys.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/linalg/matrix.hpp"

namespace ptsbe {

/// Truncation policy for MPS bonds.
struct MpsConfig {
  /// Hard cap on bond dimension (0 = unbounded).
  std::size_t max_bond = 0;
  /// Allowed discarded squared weight per SVD, relative to total.
  double truncation_error = 1e-12;
};

/// Running statistics of truncation activity.
struct MpsStats {
  double total_discarded_weight = 0.0;  ///< Σ over SVDs of discarded Σσ².
  std::size_t max_bond_reached = 1;     ///< Largest bond dimension seen.
  std::size_t svd_count = 0;            ///< Number of SVDs performed.
};

/// MPS state with gate application, Kraus branches and batched sampling.
///
/// Copy construction deep-copies the site tensors — O(n·χ²) and therefore a
/// *cheap* snapshot relative to re-running the prefix, which is why the MPS
/// backend offers itself to the shared-prefix trajectory scheduler.
class MpsState {
 public:
  /// |0…0⟩ on `num_qubits` qubits.
  explicit MpsState(unsigned num_qubits, MpsConfig config = {});

  [[nodiscard]] unsigned num_qubits() const noexcept { return n_; }
  [[nodiscard]] const MpsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const MpsStats& stats() const noexcept { return stats_; }

  /// Reset to |0…0⟩ (stats are cleared too).
  void reset();

  /// Apply a unitary on 1 or 2 qubits (first listed qubit = LSB of matrix).
  /// Non-adjacent pairs are routed with swap chains.
  void apply_gate(const Matrix& matrix, std::span<const unsigned> qubits);

  /// Run every gate op of `circuit` in order.
  void apply_circuit(const Circuit& circuit);

  /// ⟨ψ|K†K|ψ⟩ for a 1- or 2-qubit Kraus operator at the current state.
  /// Moves the orthogonality center (hence non-const); the quantum state is
  /// unchanged.
  [[nodiscard]] double branch_probability(const Matrix& k,
                                          std::span<const unsigned> qubits);

  /// Apply Kraus operator K and renormalise; returns ‖K|ψ⟩‖².
  double apply_kraus_branch(const Matrix& k, std::span<const unsigned> qubits);

  /// Squared norm (1 for normalised states; < 1 after truncation loss).
  [[nodiscard]] double norm2();

  /// Amplitude ⟨index|ψ⟩ (bit q of `index` = outcome of qubit q).
  [[nodiscard]] cplx amplitude(std::uint64_t index) const;

  /// Dense 2^n amplitude vector (test helper; n ≤ 20 enforced).
  [[nodiscard]] std::vector<cplx> to_statevector() const;

  /// Batched perfect sampling: right-canonicalise once (the cached
  /// environment), then draw `count` shots at O(n·χ²) each.
  [[nodiscard]] std::vector<std::uint64_t> sample_shots(std::size_t count,
                                                        RngStream& rng);

  /// One shot with NO environment reuse: re-canonicalises the entire chain
  /// first, mimicking per-sample re-contraction (ablation baseline).
  [[nodiscard]] std::uint64_t sample_one_uncached(RngStream& rng);

  /// Largest current bond dimension.
  [[nodiscard]] std::size_t max_bond_dim() const noexcept;

 private:
  /// Site tensor, index order (left, physical, right):
  /// data[(l*2 + s)*dr + r].
  struct Tensor {
    std::size_t dl = 1, dr = 1;
    std::vector<cplx> data;
  };

  void move_center_to(unsigned site);
  void shift_center_right();  // center_ → center_+1
  void shift_center_left();   // center_ → center_-1
  /// TEBD step on adjacent sites (p, p+1); `g` is 4×4 with site p = LSB.
  /// Leaves the center at p+1. Does not renormalise (norm tracks K exactly).
  void apply_adjacent(const Matrix& g, unsigned p);
  void apply_gate1(const Matrix& g, unsigned q);
  /// Draw one shot given right-canonical form (center at 0) without
  /// disturbing the state.
  [[nodiscard]] std::uint64_t sample_from_canonical(RngStream& rng) const;

  unsigned n_;
  MpsConfig cfg_;
  MpsStats stats_;
  std::vector<Tensor> t_;
  unsigned center_ = 0;
};

}  // namespace ptsbe
