#pragma once

/// \file workload.hpp
/// \brief Servable QEC workloads: named code + noise → noisy program + .ptq.
///
/// A `MemoryWorkload` bundles everything one threshold-sweep point needs:
/// the generated memory experiment (layout bookkeeping for the decoder), the
/// noise-bound program the pipeline executes, and — via `to_ptq()` — the
/// exact `.ptq` text a `serve::JobRequest` carries. Because the job spec is
/// the serialised noisy program itself, a sweep driven through
/// `serve::Engine` executes bit-identically to a standalone
/// `Pipeline(workload.noisy)` run with the same seed (pinned by the QEC
/// determinism matrix in tests/test_qec_e2e.cpp).

#include <string>

#include "ptsbe/noise/channels.hpp"
#include "ptsbe/noise/noise_model.hpp"
#include "ptsbe/qec/memory.hpp"

namespace ptsbe::qec {

/// One threshold-sweep point, registry-named throughout so the CLI/bench
/// can build it from flags and a job spec can describe it as data.
struct MemoryWorkloadConfig {
  std::string code = "repetition";  ///< make_code name.
  unsigned distance = 3;
  unsigned rounds = 2;
  CssBasis basis = CssBasis::kZ;
  /// Single-qubit depolarizing strength attached after every gate
  /// (0 disables gate noise).
  double noise = 0.01;
  /// Bit-flip probability before each measurement; negative = noise/2.
  double readout_noise = -1.0;

  /// The readout noise actually applied (resolves the negative default).
  [[nodiscard]] double effective_readout_noise() const noexcept {
    return readout_noise < 0.0 ? noise / 2.0 : readout_noise;
  }
};

/// A built workload: experiment layout + the noisy program to execute.
struct MemoryWorkload {
  MemoryWorkloadConfig config;
  MemoryExperiment experiment;
  NoisyCircuit noisy;

  /// `.ptq` serialisation of the noisy program — the servable job spec.
  [[nodiscard]] std::string to_ptq() const;
};

/// The circuit-level noise model a workload config describes: depolarizing
/// after every gate, bit-flip before every measurement.
[[nodiscard]] NoiseModel make_memory_noise(const MemoryWorkloadConfig& config);

/// Build the full workload (code lookup, circuit generation, noise
/// binding). \throws precondition_error on unknown code names, unsupported
/// distances, or blocks too wide for 64-bit record packing.
[[nodiscard]] MemoryWorkload make_memory_workload(
    const MemoryWorkloadConfig& config);

}  // namespace ptsbe::qec
