#pragma once

/// \file distillation.hpp
/// \brief The 5→1 magic state distillation workload (the paper's Fig. 3).
///
/// The Bravyi–Kitaev protocol consumes five noisy T-type magic states,
/// applies the [[5,1,3]] code's decoder, and post-selects on the trivial
/// syndrome; the surviving fifth qubit carries a higher-fidelity magic
/// state. The QuEra experiment the paper simulates runs this protocol on
/// *logical* qubits: each of the five wires is a colour-code block and every
/// decoder gate becomes a transversal physical layer. Both levels are
/// generated here:
///
///  - `bare_msd_circuit()`            — 5 physical qubits;
///  - `encoded_msd_circuit(code)`     — 5 × code.n physical qubits;
///  - `msd_preparation_circuit(code)` — just the five encoded magic states
///    (the 85-qubit tensor-network workload of the paper's Fig. 5).

#include <cstddef>
#include <cstdint>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/qec/codes.hpp"

namespace ptsbe::qec {

/// Bloch vector of the T-type magic state: (1,1,1)/√3.
struct MagicAxis {
  double x, y, z;
};
[[nodiscard]] MagicAxis magic_axis();

/// Gates preparing |T⟩ (Bloch (1,1,1)/√3) from |0⟩ on qubit `q` of `c`.
void append_t_state_prep(Circuit& c, unsigned q);

/// Fidelity of a qubit with Bloch vector (bx,by,bz) against the *nearest*
/// of the eight T-type axes (±1,±1,±1)/√3 — the Clifford-frame-free "magic
/// fidelity" the MSD output is scored with (Fig. 3 measures the top wire in
/// all three Pauli bases to compute exactly this).
[[nodiscard]] double magic_fidelity(double bx, double by, double bz);

/// The bare 5-qubit distillation circuit: five T-state preparations, the
/// synthesized [[5,1,3]] decoder, and measurement of all five qubits.
/// Acceptance: bits 0..3 (the syndrome qubits) all zero; the distilled state
/// sits on qubit 4 *before* its measurement collapses it — fidelity analysis
/// uses the pre-measurement state or 3-basis measurement circuits.
[[nodiscard]] Circuit bare_msd_circuit();

/// Same circuit without the final measurements (for state-level analysis).
[[nodiscard]] Circuit bare_msd_circuit_unmeasured();

/// Acceptance predicate on a bare-MSD measurement record.
[[nodiscard]] inline bool bare_msd_accept(std::uint64_t record) {
  return (record & 0xF) == 0;
}

/// Per-gate transversal realisation of logical Cliffords on a self-dual
/// doubly-even CSS code (Steane): H̄ = H⊗n, S̄ = (S†)⊗n, CX̄/CZ̄/SWAP̄ =
/// pairwise transversal, Pauli bars = transversal Paulis. Compiles a logical
/// circuit on k wires into a physical circuit on k blocks of `code.n`
/// qubits; block b's physical qubits are [b·n, (b+1)·n).
/// \throws precondition_error for gates without a transversal rule.
[[nodiscard]] Circuit compile_transversal(const Circuit& logical,
                                          const CssCode& code);

/// Preparation of one encoded magic state |T_L⟩ on `code.n` qubits: physical
/// T-prep on the encoder's input qubit followed by the synthesized encoder.
[[nodiscard]] Circuit encoded_t_state_circuit(const CssCode& code);

/// The paper's Fig. 5 workload: five encoded magic states side by side
/// (5·code.n qubits), no distillation gates, no measurements.
[[nodiscard]] Circuit msd_preparation_circuit(const CssCode& code);

/// The full encoded distillation: five |T_L⟩ blocks, the transversally
/// compiled [[5,1,3]] decoder, and a transversal Z-basis readout of every
/// physical qubit. 5·code.n qubits (35 for Steane — the paper's Fig. 4
/// statevector workload).
[[nodiscard]] Circuit encoded_msd_circuit(const CssCode& code);

/// Exact single-trajectory distillation analysis on the statevector:
/// applies `input_error`-strength depolarizing noise to each T input (via
/// trajectory sampling), runs the decoder, and accumulates the acceptance
/// probability and accepted-output magic fidelity exactly from amplitudes.
struct MsdAnalysis {
  double acceptance_probability = 0.0;
  double output_fidelity = 0.0;  ///< Accepted-output magic fidelity.
  double input_fidelity = 0.0;   ///< Magic fidelity of one noisy input.
};
[[nodiscard]] MsdAnalysis analyze_bare_msd(double input_error,
                                           std::size_t num_trajectories,
                                           std::uint64_t seed);

}  // namespace ptsbe::qec
