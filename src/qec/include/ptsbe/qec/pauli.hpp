#pragma once

/// \file pauli.hpp
/// \brief Signed Pauli strings over up to 64 qubits.
///
/// Bit-packed (x, z) representation with a sign bit (only ±1 arise in this
/// library's usage: stabilizer generators and their images under the Clifford
/// gates {H, S, CX, X, Z} stay in the real Pauli group up to tracked signs).
/// The Y convention is Y = iXZ; weight and commutation are sign-independent.

#include <cstdint>
#include <string>

namespace ptsbe::qec {

/// A Pauli operator ±P_1⊗…⊗P_n, n ≤ 64, with qubit 0 = character 0.
struct PauliString {
  std::uint64_t x = 0;  ///< X-component bits.
  std::uint64_t z = 0;  ///< Z-component bits.
  bool negative = false;

  /// Parse "XZZXI" or "-XIY" (leading '+' optional).
  static PauliString parse(const std::string& text);

  /// Number of qubits with non-identity action.
  [[nodiscard]] unsigned weight() const noexcept;

  /// True when this commutes with `other` (symplectic product even).
  [[nodiscard]] bool commutes_with(const PauliString& other) const noexcept;

  /// Group product (this · other), with sign tracked via the standard
  /// Y = iXZ bookkeeping; the product of two Hermitian Paulis that commute
  /// is Hermitian (sign ±1); anticommuting products pick up ±i, which this
  /// library never needs — such calls are a precondition violation.
  [[nodiscard]] PauliString multiply(const PauliString& other) const;

  /// "±XZIY…" over `n` qubits.
  [[nodiscard]] std::string to_string(unsigned n) const;

  /// Identity check (sign ignored).
  [[nodiscard]] bool is_identity() const noexcept { return x == 0 && z == 0; }

  friend bool operator==(const PauliString&, const PauliString&) = default;

  // --- In-place Clifford conjugation P ← G P G† --------------------------
  void conj_h(unsigned q);
  void conj_s(unsigned q);
  void conj_sdg(unsigned q);
  void conj_cx(unsigned control, unsigned target);
  void conj_cz(unsigned a, unsigned b);
  void conj_swap(unsigned a, unsigned b);
  void conj_x(unsigned q);
  void conj_z(unsigned q);
};

}  // namespace ptsbe::qec
