#pragma once

/// \file spacetime.hpp
/// \brief Whole-record decoding: spatial wrappers and the space-time
///        union-find decoder over the detector graph.
///
/// Final-data-only ("spatial") decoding throws the syndrome history away.
/// For circuit-level noise that forfeits the threshold: data errors stay
/// independent per qubit with flip probability < 1/2, so a larger distance
/// always wins and the d=3/d=5 curves never cross. The *space-time* view
/// restores the real physics. Detectors are syndrome **differences**:
///
///   D(c, 0) = s(c, round 0)                 (reference syndrome is 0)
///   D(c, r) = s(c, r) XOR s(c, r−1)         (0 < r < rounds)
///   D(c, R) = s_final(c) XOR s(c, R−1)      (from the final data readout)
///
/// Error mechanisms are the edges of a matchable graph over the detectors:
/// a data-qubit flip entering between extraction layers lights the adjacent
/// detectors of one layer (space edge); an ancilla-readout error lights the
/// same check in two consecutive layers (time edge). Measurement errors are
/// thereby *decoded* instead of poisoning the data correction, and above
/// the threshold noise strength they overwhelm larger distances first —
/// which is exactly the d=3/d=5 crossing the threshold bench pins.
///
/// The graph is matchable (every mechanism touches ≤ 2 detectors), so the
/// same `UnionFindDecoder` machinery runs it — detectors as "checks",
/// mechanisms as "qubits".

#include <cstdint>
#include <memory>
#include <string>

#include "ptsbe/qec/decoder.hpp"
#include "ptsbe/qec/memory.hpp"

namespace ptsbe::qec {

/// Decodes a whole measurement record (ancilla history + final data
/// readout) of one memory experiment. Immutable after construction,
/// thread-safe, deterministic.
class ShotDecoder {
 public:
  virtual ~ShotDecoder() = default;

  /// Registry-style name ("lookup" / "union-find" / "st-union-find").
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Decoded logical value of one record; 0 = the memory succeeded.
  [[nodiscard]] virtual unsigned decode_shot(std::uint64_t record) const = 0;
};

/// Spatial decoding behind the ShotDecoder interface: correct the final
/// data readout with a syndrome `Decoder`, ignore the ancilla history.
class SpatialShotDecoder final : public ShotDecoder {
 public:
  /// Wraps `decoder` (owned) for `experiment` (borrowed; must outlive this).
  SpatialShotDecoder(const MemoryExperiment& experiment,
                     std::unique_ptr<Decoder> decoder);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] unsigned decode_shot(std::uint64_t record) const override;

 private:
  const MemoryExperiment* experiment_;
  std::unique_ptr<Decoder> decoder_;
};

/// Space-time union-find: build the detector graph of the experiment
/// (checks × (rounds+1) layers; space + time edges as above) and decode
/// each record's detector pattern with `UnionFindDecoder`. The decoded
/// logical value is the raw final-readout parity XOR the parity of
/// correction mechanisms crossing the logical support.
///
/// Capacity: detectors ≤ 63 and mechanisms ≤ 64 (both bit-packed), i.e.
/// repetition up to d=7 at several rounds and the d=3 surface code —
/// the construction throws beyond that.
class SpaceTimeUnionFindDecoder final : public ShotDecoder {
 public:
  /// Borrows `experiment`; it must outlive the decoder.
  explicit SpaceTimeUnionFindDecoder(const MemoryExperiment& experiment);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] unsigned decode_shot(std::uint64_t record) const override;

  /// Detector bits of one record (layer-major: layer * num_checks + check).
  [[nodiscard]] std::uint64_t detectors(std::uint64_t record) const;

  [[nodiscard]] unsigned num_detectors() const noexcept {
    return num_detectors_;
  }
  [[nodiscard]] unsigned num_mechanisms() const noexcept {
    return num_mechanisms_;
  }

 private:
  const MemoryExperiment* experiment_;
  unsigned checks_ = 0;        ///< Basis checks per round.
  unsigned check_offset_ = 0;  ///< Ancilla index of the first basis check.
  unsigned num_detectors_ = 0;
  unsigned num_mechanisms_ = 0;
  std::uint64_t logical_mechanisms_ = 0;
  std::unique_ptr<UnionFindDecoder> uf_;
};

/// Factory the CLI/bench/serve specs name whole-record decoders through:
/// "lookup" and "union-find" decode spatially (final data readout only);
/// "st-union-find" decodes the full space-time detector graph.
/// \throws precondition_error on unknown kinds or capacity violations.
[[nodiscard]] std::unique_ptr<ShotDecoder> make_shot_decoder(
    const std::string& kind, const MemoryExperiment& experiment);

}  // namespace ptsbe::qec
