#pragma once

/// \file decoder.hpp
/// \brief Lookup-table decoder for CSS codes read out in the Z basis.
///
/// A transversal Z-basis readout of a CSS code block yields one bit per
/// physical qubit. X errors before readout flip bits; the parities of the
/// Z-type stabilizer supports form the syndrome, and a minimum-weight lookup
/// table maps each syndrome to its correction. This is the classical decoding
/// step the MSD post-selection and the AI-decoder training labels (the
/// paper's target application) both revolve around.

#include <cstdint>
#include <unordered_map>

#include "ptsbe/qec/codes.hpp"

namespace ptsbe::qec {

/// Minimum-weight lookup decoder over Z-basis readouts of one CSS block.
class CssLookupDecoder {
 public:
  /// Build the syndrome → correction table by enumerating X-error patterns
  /// of weight ≤ `max_error_weight` (defaults to ⌊(d−1)/2⌋ behaviour when
  /// given the code's correctable weight).
  explicit CssLookupDecoder(const CssCode& code, unsigned max_error_weight = 1);

  /// Syndrome bits of a readout: bit j = parity(outcome & z_support_j).
  [[nodiscard]] std::uint64_t syndrome(std::uint64_t outcome) const;

  /// Minimum-weight X-error mask for `syndrome` (0 when the syndrome is not
  /// in the table — the decoder then corrects nothing).
  [[nodiscard]] std::uint64_t correction(std::uint64_t syndrome_bits) const;

  /// Decoded logical Z value of a readout: parity over the logical Z support
  /// after applying the correction.
  [[nodiscard]] unsigned logical_z_value(std::uint64_t outcome) const;

  /// True when the readout's syndrome is trivial (no detected error).
  [[nodiscard]] bool syndrome_is_trivial(std::uint64_t outcome) const {
    return syndrome(outcome) == 0;
  }

 private:
  CssCode code_;
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

}  // namespace ptsbe::qec
