#pragma once

/// \file decoder.hpp
/// \brief Syndrome decoders for transversal CSS readouts.
///
/// A transversal readout of a CSS block yields one bit per physical qubit.
/// Errors anticommuting with the readout basis flip bits; the parities of
/// the matching stabilizer supports form the syndrome, and a decoder maps
/// each syndrome to a correction mask. Two families live behind the small
/// `Decoder` interface:
///
///  - `LookupDecoder` — exact minimum-weight table, enumerated up to the
///    code's correctable weight. The gold standard for small blocks; table
///    size grows as C(n, w), so it is a small-distance tool.
///  - `UnionFindDecoder` — the Delfosse–Nickerson cluster-growth + peeling
///    decoder over the matching graph (checks as nodes, qubits as edges,
///    plus one boundary node). Almost-linear time, works at any distance,
///    and is the decoder the threshold sweeps run.
///
/// `make_decoder` is the registry-style factory the CLI/bench/serve specs
/// name decoders through. All decoders are immutable after construction and
/// safe to share across threads; `decode` is deterministic (fixed iteration
/// order everywhere), which the QEC determinism matrix pins.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptsbe/qec/codes.hpp"

namespace ptsbe::qec {

/// Syndrome of a readout against a support set: bit j is the parity of the
/// readout restricted to `supports[j]`.
[[nodiscard]] std::uint64_t css_syndrome(
    const std::vector<std::uint64_t>& supports, std::uint64_t outcome);

/// A syndrome → correction-mask decoder for one CSS block readout.
/// Implementations guarantee `css_syndrome(supports, decode(s)) == s` for
/// every syndrome `s` they accept (the correction kills the syndrome).
class Decoder {
 public:
  virtual ~Decoder() = default;

  /// Registry-style name ("lookup" / "union-find").
  [[nodiscard]] virtual const std::string& name() const noexcept = 0;

  /// Correction mask for `syndrome_bits` (bit j of the syndrome = parity of
  /// check j). Thread-safe and deterministic.
  [[nodiscard]] virtual std::uint64_t decode(
      std::uint64_t syndrome_bits) const = 0;
};

/// Exact minimum-weight lookup decoder over one support set. Enumerates
/// error masks by increasing weight ≤ `max_error_weight`; the first mask
/// seen per syndrome (the lightest) wins. Unknown syndromes decode to 0
/// (correct nothing).
class LookupDecoder final : public Decoder {
 public:
  LookupDecoder(std::vector<std::uint64_t> check_supports, unsigned num_qubits,
                unsigned max_error_weight);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::uint64_t decode(std::uint64_t syndrome_bits) const override;

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

/// Union-find decoder (Delfosse–Nickerson): grow clusters around syndrome
/// defects half an edge at a time, merge until every cluster has even defect
/// parity or touches the boundary, then peel the grown forest leaves-first
/// to emit a correction. Requires a matchable graph: every qubit appears in
/// at most two of the check supports (one → boundary edge; zero →
/// undetectable, skipped). Repetition and rotated-surface readout graphs
/// satisfy this; Steane's does not (use the lookup decoder there).
class UnionFindDecoder final : public Decoder {
 public:
  UnionFindDecoder(const std::vector<std::uint64_t>& check_supports,
                   unsigned num_qubits);

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::uint64_t decode(std::uint64_t syndrome_bits) const override;

 private:
  struct Edge {
    unsigned a = 0;      ///< Check node (or boundary).
    unsigned b = 0;      ///< Check node (or boundary).
    unsigned qubit = 0;  ///< Data qubit this edge corrects.
  };
  unsigned num_checks_ = 0;
  unsigned boundary_ = 0;  ///< Node id of the single boundary node.
  bool has_boundary_edges_ = false;
  std::vector<Edge> edges_;
  /// node id → indices into edges_, ascending (fixed iteration order).
  std::vector<std::vector<unsigned>> incident_;
};

/// Minimum-weight lookup decoder over Z-basis readouts of one CSS block
/// (the original PR 2 decoder, now a `Decoder`; kept for its richer
/// syndrome/correction helpers used by the distillation workload).
class CssLookupDecoder final : public Decoder {
 public:
  /// Build the syndrome → correction table by enumerating X-error patterns
  /// of weight ≤ `max_error_weight` (defaults to ⌊(d−1)/2⌋ behaviour when
  /// given the code's correctable weight).
  explicit CssLookupDecoder(const CssCode& code, unsigned max_error_weight = 1);

  /// Syndrome bits of a readout: bit j = parity(outcome & z_support_j).
  [[nodiscard]] std::uint64_t syndrome(std::uint64_t outcome) const;

  /// Minimum-weight X-error mask for `syndrome` (0 when the syndrome is not
  /// in the table — the decoder then corrects nothing).
  [[nodiscard]] std::uint64_t correction(std::uint64_t syndrome_bits) const;

  /// Decoded logical Z value of a readout: parity over the logical Z support
  /// after applying the correction.
  [[nodiscard]] unsigned logical_z_value(std::uint64_t outcome) const;

  /// True when the readout's syndrome is trivial (no detected error).
  [[nodiscard]] bool syndrome_is_trivial(std::uint64_t outcome) const {
    return syndrome(outcome) == 0;
  }

  [[nodiscard]] const std::string& name() const noexcept override;
  [[nodiscard]] std::uint64_t decode(std::uint64_t syndrome_bits) const override {
    return correction(syndrome_bits);
  }

 private:
  CssCode code_;
  std::unordered_map<std::uint64_t, std::uint64_t> table_;
};

/// Factory: build a `kind` decoder ("lookup" | "union-find") for reading
/// `code` out in `basis`. The lookup table enumerates up to the code's
/// correctable weight ⌊(d−1)/2⌋ (at least 1).
/// \throws precondition_error on unknown kinds or when the basis has no
///         checks (e.g. X-basis readout of the repetition code).
[[nodiscard]] std::unique_ptr<Decoder> make_decoder(const std::string& kind,
                                                    const CssCode& code,
                                                    CssBasis basis =
                                                        CssBasis::kZ);

}  // namespace ptsbe::qec
