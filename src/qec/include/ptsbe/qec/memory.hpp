#pragma once

/// \file memory.hpp
/// \brief Ancilla-based syndrome extraction and QEC memory experiments.
///
/// The paper's §2.3 frames noisy QEC simulation around stabilizer
/// measurements: parity checks read out through ancillas, whose outcomes a
/// decoder consumes. This module generates circuit-level memory experiments
/// for CSS codes: encode |0_L⟩, run `rounds` of full syndrome extraction
/// (one fresh ancilla per stabilizer per round — no mid-circuit reset
/// needed, keeping the circuits inside every backend's terminal-measurement
/// model), then read out the data block transversally.
///
/// The circuits are Clifford, so they run on all four backends — including
/// the Pauli-frame bulk sampler — making them the cross-validation workload
/// where the Stim-like baseline and PTSBE can be compared head to head.

#include <cstdint>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/qec/codes.hpp"
#include "ptsbe/qec/decoder.hpp"

namespace ptsbe::qec {

/// Layout bookkeeping for a generated memory experiment.
struct MemoryExperiment {
  Circuit circuit;    ///< Encode + rounds of extraction + data readout.
  CssCode code;       ///< The protected block (data qubits 0..n-1).
  unsigned rounds = 0;
  unsigned ancillas_per_round = 0;  ///< = #X stabs + #Z stabs.
  CssBasis basis = CssBasis::kZ;    ///< Preparation + readout basis.

  /// Record-bit index of ancilla `a` in round `r` (measurement order:
  /// round-major ancillas, then the n data bits).
  [[nodiscard]] unsigned ancilla_bit(unsigned round, unsigned a) const {
    return round * ancillas_per_round + a;
  }
  /// Record-bit index of data qubit `q`.
  [[nodiscard]] unsigned data_bit(unsigned q) const {
    return rounds * ancillas_per_round + q;
  }
  /// Extract the final data readout from a measurement record.
  [[nodiscard]] std::uint64_t data_bits(std::uint64_t record) const {
    return (record >> (rounds * ancillas_per_round)) &
           ((1ULL << code.n) - 1);
  }
};

/// How the logical state is prepared.
///
/// `kEncoder` runs the synthesized unitary encoder — faithful to the code's
/// algebra and the right choice for state-injection demos, but the cascade
/// is not fault-tolerant: under circuit-level noise a single fault on the
/// logical-input qubit mid-encoder becomes an undetectable logical flip,
/// so logical error rates scale *linearly* with physical noise and larger
/// distances only add encoder depth.
///
/// `kProduct` prepares the basis product state instead: |0⟩^n for the Z
/// basis (a +1 eigenstate of every Z-check and of Z̄ for any CSS code) and
/// |+⟩^n for the X basis. The first extraction round projects into the
/// code space — the standard memory-experiment construction — and no
/// single fault is a logical operator, so distance buys genuine
/// sub-threshold suppression. Threshold measurements must use this.
enum class PrepStyle : std::uint8_t { kEncoder, kProduct };

/// Build the memory experiment: logical-state preparation (see PrepStyle;
/// for `kEncoder` an H on the logical input selects |+_L⟩ in the X basis),
/// `rounds` rounds of syndrome extraction (X-type checks via
/// H-ancilla/CX-to-data/H, Z-type checks via CX-from-data), ancilla
/// measurement each round, and a final transversal data measurement
/// (preceded by transversal H for the X basis).
[[nodiscard]] MemoryExperiment make_memory_experiment(
    const CssCode& code, unsigned rounds, CssBasis basis = CssBasis::kZ,
    PrepStyle prep = PrepStyle::kEncoder);

/// Decode one shot of the experiment with any `Decoder` built for the
/// experiment's basis: correct the final data readout and return the
/// measured logical value (0 = success).
[[nodiscard]] unsigned decode_memory_shot(const MemoryExperiment& experiment,
                                          const Decoder& decoder,
                                          std::uint64_t record);

/// Decode one shot of the experiment: lookup-correct the final data readout
/// and return the logical Z value (0 = success for a |0_L⟩ memory).
[[nodiscard]] unsigned decode_memory_shot(const MemoryExperiment& experiment,
                                          const CssLookupDecoder& decoder,
                                          std::uint64_t record);

/// Logical error rate over a batch of records.
[[nodiscard]] double memory_logical_error_rate(
    const MemoryExperiment& experiment, const Decoder& decoder,
    const std::vector<std::uint64_t>& records);

}  // namespace ptsbe::qec
