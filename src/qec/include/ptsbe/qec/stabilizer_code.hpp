#pragma once

/// \file stabilizer_code.hpp
/// \brief Stabilizer codes and encoder-circuit synthesis.
///
/// A `StabilizerCode` holds n−k commuting stabilizer generators plus logical
/// X̄/Z̄ pairs (this library supports k = 1, which covers every code the MSD
/// workload uses). `synthesize_encoder` turns the algebraic description into
/// an explicit {H, S, S†, CX, CZ, SWAP, X, Z} circuit U with
///
///   U Z_i U† = S_i  (i < n−1),   U Z_{n−1} U† = Z̄·(stab),
///   U X_{n−1} U†   = X̄·(stab),
///
/// so applying U to |ψ⟩ placed on qubit n−1 (others |0⟩) yields the encoded
/// |ψ_L⟩ exactly. The synthesis reduces the target Pauli set to the trivial
/// one by Gaussian elimination over the symplectic group, recording gates,
/// then emits the inverse. Works for CSS and non-CSS codes alike — in
/// particular the [[5,1,3]] code whose decoder is the heart of the 5→1 magic
/// state distillation circuit.

#include <string>
#include <vector>

#include "ptsbe/circuit/circuit.hpp"
#include "ptsbe/qec/pauli.hpp"

namespace ptsbe::qec {

/// An [[n, 1, d]] stabilizer code.
struct StabilizerCode {
  std::string name;
  unsigned n = 0;                       ///< Physical qubits (≤ 64).
  std::vector<PauliString> stabilizers; ///< n−1 independent generators.
  PauliString logical_x;
  PauliString logical_z;

  /// Validate: generator count, pairwise commutation, logical algebra
  /// (X̄/Z̄ anticommute, both commute with every stabilizer).
  /// \throws precondition_error describing the first violation.
  void validate() const;

  /// Code distance by exhaustive search over the normaliser: the minimum
  /// weight of a Pauli that commutes with every stabilizer but acts
  /// nontrivially on the logical qubit. Exponential in n — intended for
  /// n ≤ ~20 (runs over 4^w candidates by increasing weight w).
  [[nodiscard]] unsigned distance(unsigned max_weight = 6) const;
};

/// Synthesize the encoder circuit described above. The returned circuit acts
/// on `code.n` qubits with the logical input on qubit n−1.
[[nodiscard]] Circuit synthesize_encoder(const StabilizerCode& code);

/// The inverse (decoder) of `synthesize_encoder(code)`: maps the codespace
/// to syndrome qubits 0..n−2 (all |0⟩ for the trivial syndrome) and the
/// logical state onto qubit n−1.
[[nodiscard]] Circuit synthesize_decoder(const StabilizerCode& code);

/// Invert a circuit made of {h, s, sdg, cx, cz, swap, x, y, z} gates.
[[nodiscard]] Circuit invert_clifford_circuit(const Circuit& circuit);

}  // namespace ptsbe::qec
