#pragma once

/// \file codes.hpp
/// \brief Concrete code constructions used by the MSD workloads.
///
/// The paper's experiments encode the 5-qubit magic state distillation
/// protocol into the [[7,1,3]] Steane colour code (35 physical qubits) and
/// the [[17,1,5]] 4.8.8 colour code (85 physical qubits). We implement the
/// Steane code exactly. For the distance-5 block we substitute the rotated
/// surface code [[25,1,5]] — a distance-5 CSS code we can construct and
/// brute-force-verify programmatically (the 4.8.8 face layout is not
/// recoverable from the paper text alone); DESIGN.md documents why the
/// substitution preserves the workload's role. See qec::distillation for how
/// the codes are consumed.

#include <cstdint>
#include <string>
#include <vector>

#include "ptsbe/qec/stabilizer_code.hpp"

namespace ptsbe::qec {

/// Transversal readout basis of a CSS block. Z-basis readouts detect X
/// errors through the Z-type supports; X-basis readouts detect Z errors
/// through the X-type supports. Decoders and memory experiments take the
/// basis as a parameter and pick the matching support set.
enum class CssBasis : std::uint8_t { kZ, kX };

/// Registry-style name ("z" / "x").
[[nodiscard]] const std::string& to_string(CssBasis basis);
[[nodiscard]] CssBasis basis_from_string(const std::string& name);

/// A CSS [[n,1,d]] code: the generic stabilizer description plus the
/// X-/Z-type support masks the syndrome decoder consumes.
struct CssCode : StabilizerCode {
  std::vector<std::uint64_t> x_supports;  ///< X-type generator supports.
  std::vector<std::uint64_t> z_supports;  ///< Z-type generator supports.
  /// Designed distance in the Z readout basis (bit-flip distance). For the
  /// self-dual codes this is the full code distance; the repetition code
  /// protects X errors only, so its X-basis distance is 1.
  unsigned code_distance = 0;

  /// Check supports consumed by a `basis` readout decoder.
  [[nodiscard]] const std::vector<std::uint64_t>& check_supports(
      CssBasis basis) const {
    return basis == CssBasis::kZ ? z_supports : x_supports;
  }
  /// Support mask of the logical operator a `basis` readout measures.
  [[nodiscard]] std::uint64_t logical_support(CssBasis basis) const {
    return basis == CssBasis::kZ ? logical_z.z : logical_x.x;
  }
};

/// The [[7,1,3]] Steane colour code (X and Z stabilizers share the Hamming
/// parity-check supports; logical X̄ = X⊗7, Z̄ = Z⊗7).
[[nodiscard]] CssCode steane();

/// The rotated surface code [[d², 1, d]] for odd d ≥ 3.
[[nodiscard]] CssCode rotated_surface_code(unsigned d);

/// The [[d,1]] bit-flip repetition code for odd d ≥ 3: Z-type checks
/// Z_i Z_{i+1}, logical Z̄ = Z_0, X̄ = X⊗d. Distance d against X errors,
/// 1 against Z errors — the classic threshold-study workload (and the
/// smallest code whose union-find decoding graph is a nontrivial chain).
[[nodiscard]] CssCode repetition_code(unsigned d);

/// Code lookup by registry-style name: "repetition", "surface" (rotated
/// surface code), or "steane" (distance must be 3).
/// \throws precondition_error on unknown names or unsupported distances.
[[nodiscard]] CssCode make_code(const std::string& name, unsigned distance);

/// The [[5,1,3]] perfect code (non-CSS, cyclic stabilizers XZZXI…); its
/// decoder realises the 5→1 magic state distillation.
[[nodiscard]] StabilizerCode five_qubit_code();

}  // namespace ptsbe::qec
