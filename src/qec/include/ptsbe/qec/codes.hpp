#pragma once

/// \file codes.hpp
/// \brief Concrete code constructions used by the MSD workloads.
///
/// The paper's experiments encode the 5-qubit magic state distillation
/// protocol into the [[7,1,3]] Steane colour code (35 physical qubits) and
/// the [[17,1,5]] 4.8.8 colour code (85 physical qubits). We implement the
/// Steane code exactly. For the distance-5 block we substitute the rotated
/// surface code [[25,1,5]] — a distance-5 CSS code we can construct and
/// brute-force-verify programmatically (the 4.8.8 face layout is not
/// recoverable from the paper text alone); DESIGN.md documents why the
/// substitution preserves the workload's role. See qec::distillation for how
/// the codes are consumed.

#include <cstdint>
#include <vector>

#include "ptsbe/qec/stabilizer_code.hpp"

namespace ptsbe::qec {

/// A CSS [[n,1,d]] code: the generic stabilizer description plus the
/// X-/Z-type support masks the syndrome decoder consumes.
struct CssCode : StabilizerCode {
  std::vector<std::uint64_t> x_supports;  ///< X-type generator supports.
  std::vector<std::uint64_t> z_supports;  ///< Z-type generator supports.
};

/// The [[7,1,3]] Steane colour code (X and Z stabilizers share the Hamming
/// parity-check supports; logical X̄ = X⊗7, Z̄ = Z⊗7).
[[nodiscard]] CssCode steane();

/// The rotated surface code [[d², 1, d]] for odd d ≥ 3.
[[nodiscard]] CssCode rotated_surface_code(unsigned d);

/// The [[5,1,3]] perfect code (non-CSS, cyclic stabilizers XZZXI…); its
/// decoder realises the 5→1 magic state distillation.
[[nodiscard]] StabilizerCode five_qubit_code();

}  // namespace ptsbe::qec
