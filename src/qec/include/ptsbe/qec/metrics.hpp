#pragma once

/// \file metrics.hpp
/// \brief Logical-error analytics over PTSBE trajectory records.
///
/// The estimator layer answers "what is E[f(record)]"; threshold studies
/// need the specialised f = "did the decoder fail this shot" *plus* honest
/// uncertainty on a rate that is often very small. This module provides:
///
///  - `wilson_interval` — the Wilson score interval for a binomial rate
///    (well-behaved at 0 failures, unlike the normal approximation);
///  - `LogicalErrorAccumulator` — a streaming consumer of trajectory
///    batches (usable directly as a `be::BatchSink`, so sweeps never
///    materialise a full `Result`). It weighs shots with exactly the
///    estimator's `be::shot_weight` rule, so the weighted rate equals
///    `RunResult::estimate_probability(decoder fails)` bit-for-bit, and
///    scales its Wilson interval by the Kish effective sample size
///    (Σw)²/Σw² — which degrades gracefully under importance-sampling
///    strategies and reduces to the raw shot count for uniform weights;
///  - `run_memory_point` — one threshold-sweep point end to end: workload →
///    pipeline (streaming) → decoded `LogicalErrorPoint`.

#include <cstddef>
#include <cstdint>
#include <string>

#include <memory>

#include "ptsbe/core/estimator.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/qec/decoder.hpp"
#include "ptsbe/qec/memory.hpp"
#include "ptsbe/qec/spacetime.hpp"
#include "ptsbe/qec/workload.hpp"

namespace ptsbe::qec {

/// z-score of the two-sided 95% confidence level.
inline constexpr double kZ95 = 1.959963984540054;

/// A confidence interval on a binomial rate, clamped to [0, 1].
struct WilsonInterval {
  double lower = 0.0;
  double upper = 0.0;
};

/// Wilson score interval for `failures` out of `trials` at z-score `z`.
/// Accepts fractional (effective) counts; returns [0, 1] for zero trials.
[[nodiscard]] WilsonInterval wilson_interval(double failures, double trials,
                                             double z = kZ95);

/// Streaming logical-error-rate accumulator. Feed it every batch of one
/// run — via `consume` or by passing `sink()` to
/// `Pipeline::run_streaming` / `be::execute_streaming` — then read the
/// rate. Not thread-safe by itself; the BatchSink contract (sink invoked
/// only on the calling thread, in deterministic order) makes that safe.
class LogicalErrorAccumulator {
 public:
  /// `decoder` must outlive the accumulator; `weighting` is the
  /// strategy-declared one (`Pipeline::weighting()`).
  LogicalErrorAccumulator(const ShotDecoder& decoder,
                          be::Weighting weighting);

  /// Spatial convenience: wraps `decoder` for `experiment` (both borrowed;
  /// must outlive the accumulator).
  LogicalErrorAccumulator(const MemoryExperiment& experiment,
                          const Decoder& decoder, be::Weighting weighting);

  void consume(const be::TrajectoryBatch& batch);
  void consume(const be::Result& result);

  /// A sink forwarding every batch into this accumulator.
  [[nodiscard]] be::BatchSink sink();

  /// Raw decoded shots / failures (unweighted diagnostics — and the exact
  /// pinned quantities for uniform-weight golden tests).
  [[nodiscard]] std::uint64_t shots() const noexcept { return shots_; }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

  /// Self-normalised weighted failure rate (0 when nothing accumulated).
  [[nodiscard]] double logical_error_rate() const;

  /// Kish effective sample size (Σw)²/Σw²; equals shots() for uniform
  /// weights.
  [[nodiscard]] double effective_shots() const;

  /// Wilson interval on the weighted rate at effective_shots() trials.
  [[nodiscard]] WilsonInterval wilson(double z = kZ95) const;

 private:
  std::unique_ptr<ShotDecoder> owned_;  ///< Set by the spatial ctor.
  const ShotDecoder* decoder_;
  be::Weighting weighting_;
  std::uint64_t shots_ = 0;
  std::uint64_t failures_ = 0;
  double weight_sum_ = 0.0;
  double weight_sq_sum_ = 0.0;
  double failure_weight_ = 0.0;
};

/// Execution knobs for one sweep point (registry-named, like everything in
/// the pipeline).
struct MemoryRunConfig {
  std::string strategy = "probabilistic";
  pts::StrategyConfig strategy_config;
  std::string backend = "stabilizer";
  BackendConfig backend_config;
  be::Schedule schedule = be::Schedule::kIndependent;
  std::size_t threads = 1;
  std::uint64_t seed = 0x5EEDBA5EDULL;
};

/// One row of a threshold study.
struct LogicalErrorPoint {
  std::string code;
  unsigned distance = 0;
  unsigned rounds = 0;
  std::string basis;
  std::string decoder;
  double noise = 0.0;
  double readout_noise = 0.0;
  std::uint64_t shots = 0;
  std::uint64_t failures = 0;
  double logical_error_rate = 0.0;
  double effective_shots = 0.0;
  WilsonInterval ci;
};

/// Run one workload through the pipeline (streaming — batches are decoded
/// as devices finish, never materialised) and summarise.
[[nodiscard]] LogicalErrorPoint run_memory_point(
    const MemoryWorkload& workload, const ShotDecoder& decoder,
    const MemoryRunConfig& run = {});

/// Spatial convenience overload (final-data-only decoding).
[[nodiscard]] LogicalErrorPoint run_memory_point(
    const MemoryWorkload& workload, const Decoder& decoder,
    const MemoryRunConfig& run = {});

}  // namespace ptsbe::qec
