#include "ptsbe/qec/distillation.hpp"

#include <array>
#include <cmath>

#include "ptsbe/common/error.hpp"
#include "ptsbe/common/rng.hpp"
#include "ptsbe/qec/stabilizer_code.hpp"
#include "ptsbe/statevector/statevector.hpp"

namespace ptsbe::qec {

MagicAxis magic_axis() {
  const double inv = 1.0 / std::sqrt(3.0);
  return {inv, inv, inv};
}

void append_t_state_prep(Circuit& c, unsigned q) {
  // |T⟩ = cos(θ/2)|0⟩ + e^{iπ/4} sin(θ/2)|1⟩ with cosθ = 1/√3 puts the
  // Bloch vector on (1,1,1)/√3.
  const double theta = std::acos(1.0 / std::sqrt(3.0));
  c.ry(q, theta);
  c.p(q, M_PI / 4.0);
}

double magic_fidelity(double bx, double by, double bz) {
  const double proj =
      (std::abs(bx) + std::abs(by) + std::abs(bz)) / std::sqrt(3.0);
  return 0.5 * (1.0 + proj);
}

Circuit bare_msd_circuit_unmeasured() {
  Circuit c(5);
  for (unsigned q = 0; q < 5; ++q) append_t_state_prep(c, q);
  c.append(synthesize_decoder(five_qubit_code()));
  return c;
}

Circuit bare_msd_circuit() {
  Circuit c = bare_msd_circuit_unmeasured();
  c.measure_all();
  return c;
}

Circuit compile_transversal(const Circuit& logical, const CssCode& code) {
  const unsigned n = code.n;
  Circuit phys(logical.num_qubits() * n);
  const auto block = [n](unsigned b, unsigned i) { return b * n + i; };
  for (const Operation& op : logical.ops()) {
    if (op.kind == OpKind::kMeasure) {
      for (unsigned i = 0; i < n; ++i)
        phys.measure(block(op.qubits[0], i));
      continue;
    }
    const std::string& g = op.name;
    const unsigned a = op.qubits[0];
    const unsigned b = op.qubits.size() > 1 ? op.qubits[1] : a;
    if (g == "h") {
      for (unsigned i = 0; i < n; ++i) phys.h(block(a, i));
    } else if (g == "s") {
      // Steane (doubly-even self-dual CSS): S̄ = (S†)⊗n.
      for (unsigned i = 0; i < n; ++i) phys.sdg(block(a, i));
    } else if (g == "sdg") {
      for (unsigned i = 0; i < n; ++i) phys.s(block(a, i));
    } else if (g == "x") {
      for (unsigned i = 0; i < n; ++i) phys.x(block(a, i));
    } else if (g == "y") {
      for (unsigned i = 0; i < n; ++i) phys.y(block(a, i));
    } else if (g == "z") {
      for (unsigned i = 0; i < n; ++i) phys.z(block(a, i));
    } else if (g == "cx") {
      for (unsigned i = 0; i < n; ++i) phys.cx(block(a, i), block(b, i));
    } else if (g == "cz") {
      for (unsigned i = 0; i < n; ++i) phys.cz(block(a, i), block(b, i));
    } else if (g == "swap") {
      for (unsigned i = 0; i < n; ++i) phys.swap(block(a, i), block(b, i));
    } else {
      PTSBE_REQUIRE(false, "gate '" + g + "' has no transversal rule");
    }
  }
  return phys;
}

Circuit encoded_t_state_circuit(const CssCode& code) {
  Circuit c(code.n);
  append_t_state_prep(c, code.n - 1);  // encoder input qubit
  c.append(synthesize_encoder(code));
  return c;
}

Circuit msd_preparation_circuit(const CssCode& code) {
  const Circuit block = encoded_t_state_circuit(code);
  Circuit c(5 * code.n);
  for (unsigned b = 0; b < 5; ++b) {
    std::vector<unsigned> map(code.n);
    for (unsigned i = 0; i < code.n; ++i) map[i] = b * code.n + i;
    c.append(block, map);
  }
  return c;
}

Circuit encoded_msd_circuit(const CssCode& code) {
  Circuit c = msd_preparation_circuit(code);
  Circuit decoder = synthesize_decoder(five_qubit_code());
  c.append(compile_transversal(decoder, code));
  c.measure_all();
  return c;
}

MsdAnalysis analyze_bare_msd(double input_error, std::size_t num_trajectories,
                             std::uint64_t seed) {
  PTSBE_REQUIRE(input_error >= 0.0 && input_error <= 1.0,
                "input error out of range");
  const Circuit decoder = synthesize_decoder(five_qubit_code());
  RngStream rng(seed);

  double acc_prob = 0.0;
  double bloch[3] = {0.0, 0.0, 0.0};
  for (std::size_t t = 0; t < num_trajectories; ++t) {
    StateVector sv(5);
    Circuit prep(5);
    for (unsigned q = 0; q < 5; ++q) append_t_state_prep(prep, q);
    sv.apply_circuit(prep);
    // Trajectory-sample depolarizing noise on each input.
    for (unsigned q = 0; q < 5; ++q) {
      const double r = rng.uniform();
      if (r < input_error) {
        const unsigned pauli = 1 + static_cast<unsigned>(rng.uniform_index(3));
        sv.apply_gate(gates::pauli(pauli), std::array{q});
      }
    }
    sv.apply_circuit(decoder);
    // Acceptance: syndrome qubits 0..3 all zero.
    const cplx a0 = sv.amplitude(0);         // |0⟩ on qubit 4, syndrome 0
    const cplx a1 = sv.amplitude(1ULL << 4); // |1⟩ on qubit 4, syndrome 0
    const double p = std::norm(a0) + std::norm(a1);
    acc_prob += p;
    if (p > 1e-15) {
      bloch[0] += 2.0 * (std::conj(a0) * a1).real();
      bloch[1] += 2.0 * (std::conj(a0) * a1).imag();
      bloch[2] += std::norm(a0) - std::norm(a1);
    }
  }
  MsdAnalysis out;
  out.acceptance_probability = acc_prob / static_cast<double>(num_trajectories);
  if (acc_prob > 0.0)
    out.output_fidelity =
        magic_fidelity(bloch[0] / acc_prob, bloch[1] / acc_prob,
                       bloch[2] / acc_prob);
  // One depolarized input: Bloch shrinks by (1 - 4p/3).
  const double shrink = 1.0 - 4.0 * input_error / 3.0;
  const MagicAxis ax = magic_axis();
  out.input_fidelity =
      magic_fidelity(shrink * ax.x, shrink * ax.y, shrink * ax.z);
  return out;
}

}  // namespace ptsbe::qec
