#include "ptsbe/qec/workload.hpp"

#include "ptsbe/common/error.hpp"
#include "ptsbe/io/ptq.hpp"

namespace ptsbe::qec {

NoiseModel make_memory_noise(const MemoryWorkloadConfig& config) {
  PTSBE_REQUIRE(config.noise >= 0.0 && config.noise <= 1.0,
                "gate noise strength must be a probability");
  NoiseModel model;
  if (config.noise > 0.0)
    model.add_all_gate_noise(channels::depolarizing(config.noise));
  const double readout = config.effective_readout_noise();
  if (readout > 0.0)
    model.add_measurement_noise(channels::bit_flip(readout));
  return model;
}

MemoryWorkload make_memory_workload(const MemoryWorkloadConfig& config) {
  const CssCode code = make_code(config.code, config.distance);
  // Product-state preparation, not the unitary encoder: threshold curves
  // need distance to buy suppression, and the non-fault-tolerant encoder
  // cascade turns single input-qubit faults into undetectable logical
  // flips (see PrepStyle).
  MemoryExperiment experiment = make_memory_experiment(
      code, config.rounds, config.basis, PrepStyle::kProduct);
  const NoiseModel noise = make_memory_noise(config);
  NoisyCircuit noisy = noise.apply(experiment.circuit);
  return MemoryWorkload{config, std::move(experiment), std::move(noisy)};
}

std::string MemoryWorkload::to_ptq() const { return io::write_circuit(noisy); }

}  // namespace ptsbe::qec
