#include "ptsbe/qec/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

WilsonInterval wilson_interval(double failures, double trials, double z) {
  PTSBE_REQUIRE(trials >= 0.0 && failures >= 0.0 && failures <= trials,
                "wilson_interval needs 0 <= failures <= trials");
  PTSBE_REQUIRE(z > 0.0, "wilson_interval needs a positive z-score");
  if (trials == 0.0) return {0.0, 1.0};
  const double p = failures / trials;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / trials;
  const double centre = p + z2 / (2.0 * trials);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials));
  WilsonInterval out;
  // At the endpoints centre − margin (resp. centre + margin) is exactly
  // zero algebraically but not in floating point; pin the exact value.
  out.lower = failures == 0.0 ? 0.0
                              : std::max(0.0, (centre - margin) / denom);
  out.upper = failures == trials
                  ? 1.0
                  : std::min(1.0, (centre + margin) / denom);
  return out;
}

LogicalErrorAccumulator::LogicalErrorAccumulator(const ShotDecoder& decoder,
                                                 be::Weighting weighting)
    : decoder_(&decoder), weighting_(weighting) {}

LogicalErrorAccumulator::LogicalErrorAccumulator(
    const MemoryExperiment& experiment, const Decoder& decoder,
    be::Weighting weighting)
    : weighting_(weighting) {
  // Non-owning view of the caller's Decoder behind the ShotDecoder shape.
  struct Borrowed final : Decoder {
    const Decoder* inner;
    explicit Borrowed(const Decoder& d) : inner(&d) {}
    [[nodiscard]] const std::string& name() const noexcept override {
      return inner->name();
    }
    [[nodiscard]] std::uint64_t decode(std::uint64_t s) const override {
      return inner->decode(s);
    }
  };
  owned_ = std::make_unique<SpatialShotDecoder>(
      experiment, std::make_unique<Borrowed>(decoder));
  decoder_ = owned_.get();
}

void LogicalErrorAccumulator::consume(const be::TrajectoryBatch& batch) {
  const double v = be::shot_weight(batch, weighting_);
  if (v <= 0.0) return;
  for (std::uint64_t record : batch.records) {
    const bool failed = decoder_->decode_shot(record) != 0;
    ++shots_;
    failures_ += failed ? 1 : 0;
    weight_sum_ += v;
    weight_sq_sum_ += v * v;
    if (failed) failure_weight_ += v;
  }
}

void LogicalErrorAccumulator::consume(const be::Result& result) {
  for (const be::TrajectoryBatch& batch : result.batches) consume(batch);
}

be::BatchSink LogicalErrorAccumulator::sink() {
  return [this](be::TrajectoryBatch&& batch) { consume(batch); };
}

double LogicalErrorAccumulator::logical_error_rate() const {
  return weight_sum_ > 0.0 ? failure_weight_ / weight_sum_ : 0.0;
}

double LogicalErrorAccumulator::effective_shots() const {
  return weight_sq_sum_ > 0.0 ? weight_sum_ * weight_sum_ / weight_sq_sum_
                              : 0.0;
}

WilsonInterval LogicalErrorAccumulator::wilson(double z) const {
  const double trials = effective_shots();
  const double failures =
      std::min(logical_error_rate() * trials, trials);  // FP-safe clamp
  return wilson_interval(failures, trials, z);
}

LogicalErrorPoint run_memory_point(const MemoryWorkload& workload,
                                   const ShotDecoder& decoder,
                                   const MemoryRunConfig& run) {
  Pipeline pipeline(workload.noisy);
  pipeline.strategy(run.strategy, run.strategy_config)
      .backend(run.backend, run.backend_config)
      .schedule(run.schedule)
      .threads(run.threads)
      .seed(run.seed);
  LogicalErrorAccumulator acc(decoder, pipeline.weighting());
  pipeline.run_streaming(acc.sink());

  LogicalErrorPoint point;
  point.code = workload.config.code;
  point.distance = workload.config.distance;
  point.rounds = workload.config.rounds;
  point.basis = to_string(workload.config.basis);
  point.decoder = decoder.name();
  point.noise = workload.config.noise;
  point.readout_noise = workload.config.effective_readout_noise();
  point.shots = acc.shots();
  point.failures = acc.failures();
  point.logical_error_rate = acc.logical_error_rate();
  point.effective_shots = acc.effective_shots();
  point.ci = acc.wilson();
  return point;
}

LogicalErrorPoint run_memory_point(const MemoryWorkload& workload,
                                   const Decoder& decoder,
                                   const MemoryRunConfig& run) {
  struct Borrowed final : Decoder {
    const Decoder* inner;
    explicit Borrowed(const Decoder& d) : inner(&d) {}
    [[nodiscard]] const std::string& name() const noexcept override {
      return inner->name();
    }
    [[nodiscard]] std::uint64_t decode(std::uint64_t s) const override {
      return inner->decode(s);
    }
  };
  const SpatialShotDecoder shot(workload.experiment,
                                std::make_unique<Borrowed>(decoder));
  return run_memory_point(workload, shot, run);
}

}  // namespace ptsbe::qec
