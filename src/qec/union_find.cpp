#include <algorithm>
#include <string>
#include <vector>

#include "ptsbe/common/error.hpp"
#include "ptsbe/qec/decoder.hpp"

namespace ptsbe::qec {

namespace {

const std::string kUnionFindName = "union-find";

/// Disjoint-set over graph nodes carrying per-cluster defect parity and a
/// "contains the boundary node" flag — the two facts cluster growth needs.
struct Clusters {
  std::vector<unsigned> parent;
  std::vector<unsigned> rank;
  std::vector<std::uint8_t> parity;
  std::vector<std::uint8_t> boundary;

  explicit Clusters(unsigned n)
      : parent(n), rank(n, 0), parity(n, 0), boundary(n, 0) {
    for (unsigned i = 0; i < n; ++i) parent[i] = i;
  }
  unsigned find(unsigned v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  void unite(unsigned a, unsigned b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    parity[a] ^= parity[b];
    boundary[a] |= boundary[b];
    if (rank[a] == rank[b]) ++rank[a];
  }
};

}  // namespace

UnionFindDecoder::UnionFindDecoder(
    const std::vector<std::uint64_t>& check_supports, unsigned num_qubits) {
  PTSBE_REQUIRE(!check_supports.empty(),
                "union-find decoder needs at least one check support");
  PTSBE_REQUIRE(check_supports.size() <= 63,
                "syndrome packing supports up to 63 checks");
  PTSBE_REQUIRE(num_qubits >= 1 && num_qubits <= 64,
                "readout packing supports up to 64 qubits");
  num_checks_ = static_cast<unsigned>(check_supports.size());
  boundary_ = num_checks_;

  // One edge per detectable qubit: two incident checks → internal edge, one
  // → boundary edge. More than two means the readout graph is not a
  // matching problem (e.g. Steane) — refuse rather than decode badly.
  for (unsigned q = 0; q < num_qubits; ++q) {
    unsigned found = 0;
    unsigned checks[2] = {0, 0};
    for (unsigned j = 0; j < num_checks_; ++j) {
      if (((check_supports[j] >> q) & 1ULL) == 0) continue;
      PTSBE_REQUIRE(found < 2,
                    "union-find needs a matchable code: every qubit in at "
                    "most two check supports");
      checks[found++] = j;
    }
    if (found == 0) continue;  // undetectable by this basis
    Edge e;
    e.a = checks[0];
    e.b = found == 2 ? checks[1] : boundary_;
    e.qubit = q;
    if (e.b == boundary_) has_boundary_edges_ = true;
    edges_.push_back(e);
  }

  incident_.assign(num_checks_ + 1, {});
  for (unsigned e = 0; e < edges_.size(); ++e) {
    incident_[edges_[e].a].push_back(e);
    incident_[edges_[e].b].push_back(e);
  }
}

const std::string& UnionFindDecoder::name() const noexcept {
  return kUnionFindName;
}

std::uint64_t UnionFindDecoder::decode(std::uint64_t syndrome_bits) const {
  std::uint64_t defects = syndrome_bits & ((1ULL << num_checks_) - 1);
  if (defects == 0) return 0;

  const unsigned num_nodes = num_checks_ + 1;
  Clusters dsu(num_nodes);
  for (unsigned j = 0; j < num_checks_; ++j)
    dsu.parity[j] = static_cast<std::uint8_t>((defects >> j) & 1ULL);
  dsu.boundary[boundary_] = 1;

  // Growth: every edge incident to an active cluster (odd defect parity,
  // no boundary) gains one half-edge per active endpoint each round;
  // fully-grown edges merge their clusters. Deterministic: fixed edge
  // order, synchronous rounds.
  std::vector<std::uint8_t> growth(edges_.size(), 0);
  auto active = [&](unsigned node) {
    const unsigned r = dsu.find(node);
    return dsu.parity[r] != 0 && dsu.boundary[r] == 0;
  };
  while (true) {
    bool any_active = false;
    for (unsigned j = 0; j < num_checks_ && !any_active; ++j)
      if (active(j)) any_active = true;
    if (!any_active) break;
    bool progressed = false;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (growth[e] >= 2) continue;
      unsigned inc = 0;
      if (active(edges_[e].a)) ++inc;
      if (active(edges_[e].b)) ++inc;
      if (inc == 0) continue;
      growth[e] =
          static_cast<std::uint8_t>(std::min<unsigned>(2u, growth[e] + inc));
      progressed = true;
    }
    // An odd cluster whose component has no boundary edge can exhaust its
    // edges; bail instead of spinning (its defect stays unresolved).
    if (!progressed) break;
    for (std::size_t e = 0; e < edges_.size(); ++e)
      if (growth[e] == 2) dsu.unite(edges_[e].a, edges_[e].b);
  }

  // Spanning forest over fully-grown edges: BFS from the boundary node
  // first (so boundary-touching components root there and can absorb an
  // odd leftover defect), then from the lowest-id node of each remaining
  // component.
  constexpr unsigned kNoEdge = ~0u;
  std::vector<std::uint8_t> visited(num_nodes, 0);
  std::vector<unsigned> parent(num_nodes, 0);
  std::vector<unsigned> parent_edge(num_nodes, kNoEdge);
  std::vector<unsigned> order;
  order.reserve(num_nodes);
  auto bfs_from = [&](unsigned root) {
    if (visited[root]) return;
    visited[root] = 1;
    const std::size_t first = order.size();
    order.push_back(root);
    for (std::size_t i = first; i < order.size(); ++i) {
      const unsigned v = order[i];
      for (unsigned e : incident_[v]) {
        if (growth[e] != 2) continue;
        const unsigned w = edges_[e].a == v ? edges_[e].b : edges_[e].a;
        if (visited[w]) continue;
        visited[w] = 1;
        parent[w] = v;
        parent_edge[w] = e;
        order.push_back(w);
      }
    }
  };
  bfs_from(boundary_);
  for (unsigned v = 0; v < num_checks_; ++v) bfs_from(v);

  // Peel leaves-first (reverse BFS order): a defect at a non-root node
  // flips its tree edge into the correction and pushes the defect onto the
  // parent; a defect pushed onto the boundary root is absorbed.
  std::uint64_t correction = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const unsigned v = *it;
    if (parent_edge[v] == kNoEdge) continue;  // component root
    if (((defects >> v) & 1ULL) == 0) continue;
    correction ^= 1ULL << edges_[parent_edge[v]].qubit;
    defects ^= 1ULL << v;
    if (parent[v] != boundary_) defects ^= 1ULL << parent[v];
  }
  return correction;
}

}  // namespace ptsbe::qec
