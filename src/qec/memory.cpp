#include "ptsbe/qec/memory.hpp"

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"
#include "ptsbe/qec/stabilizer_code.hpp"

namespace ptsbe::qec {

MemoryExperiment make_memory_experiment(const CssCode& code, unsigned rounds,
                                        CssBasis basis, PrepStyle prep) {
  PTSBE_REQUIRE(rounds >= 1, "memory experiment needs at least one round");
  PTSBE_REQUIRE(!code.check_supports(basis).empty(),
                "code '" + code.name + "' has no " + to_string(basis) +
                    "-basis checks — its memory cannot be decoded");
  MemoryExperiment exp;
  exp.code = code;
  exp.rounds = rounds;
  exp.basis = basis;
  exp.ancillas_per_round =
      static_cast<unsigned>(code.x_supports.size() + code.z_supports.size());
  const unsigned total =
      code.n + rounds * exp.ancillas_per_round;
  PTSBE_REQUIRE(total <= 64, "record packing supports up to 64 qubits");

  Circuit c(total);
  if (prep == PrepStyle::kEncoder) {
    // The encoder takes the logical input on qubit n−1: |0⟩ there encodes
    // |0_L⟩; an H first prepares |+⟩ → |+_L⟩ for the X-basis memory.
    if (basis == CssBasis::kX) c.h(code.n - 1);
    c.append(synthesize_encoder(code));
  } else if (basis == CssBasis::kX) {
    // Product prep: |+⟩^n (Z basis needs nothing — |0⟩^n is the start
    // state); the first extraction round completes the projection.
    for (unsigned q = 0; q < code.n; ++q) c.h(q);
  }

  unsigned next_ancilla = code.n;
  for (unsigned r = 0; r < rounds; ++r) {
    // X-type checks: ancilla |+⟩ controls CX onto the data support; a
    // final H maps the accumulated phase parity to the Z basis.
    for (std::uint64_t support : code.x_supports) {
      const unsigned a = next_ancilla++;
      c.h(a);
      for (unsigned q = 0; q < code.n; ++q)
        if ((support >> q) & 1ULL) c.cx(a, q);
      c.h(a);
      c.measure(a);
    }
    // Z-type checks: data qubits control CX onto the |0⟩ ancilla, which
    // accumulates the bit parity directly.
    for (std::uint64_t support : code.z_supports) {
      const unsigned a = next_ancilla++;
      for (unsigned q = 0; q < code.n; ++q)
        if ((support >> q) & 1ULL) c.cx(q, a);
      c.measure(a);
    }
  }
  if (basis == CssBasis::kX)
    for (unsigned q = 0; q < code.n; ++q) c.h(q);
  for (unsigned q = 0; q < code.n; ++q) c.measure(q);
  exp.circuit = std::move(c);
  return exp;
}

unsigned decode_memory_shot(const MemoryExperiment& experiment,
                            const Decoder& decoder, std::uint64_t record) {
  const std::uint64_t data = experiment.data_bits(record);
  const auto& supports = experiment.code.check_supports(experiment.basis);
  const std::uint64_t corrected =
      data ^ decoder.decode(css_syndrome(supports, data));
  return parity64(corrected &
                  experiment.code.logical_support(experiment.basis));
}

unsigned decode_memory_shot(const MemoryExperiment& experiment,
                            const CssLookupDecoder& decoder,
                            std::uint64_t record) {
  PTSBE_REQUIRE(experiment.basis == CssBasis::kZ,
                "CssLookupDecoder decodes Z-basis memories; use make_decoder "
                "for the X basis");
  return decoder.logical_z_value(experiment.data_bits(record));
}

double memory_logical_error_rate(const MemoryExperiment& experiment,
                                 const Decoder& decoder,
                                 const std::vector<std::uint64_t>& records) {
  PTSBE_REQUIRE(!records.empty(), "no records to decode");
  double errors = 0.0;
  for (std::uint64_t r : records)
    errors += decode_memory_shot(experiment, decoder, r) != 0 ? 1.0 : 0.0;
  return errors / static_cast<double>(records.size());
}

}  // namespace ptsbe::qec
