#include "ptsbe/qec/memory.hpp"

#include "ptsbe/common/error.hpp"
#include "ptsbe/qec/stabilizer_code.hpp"

namespace ptsbe::qec {

MemoryExperiment make_memory_experiment(const CssCode& code, unsigned rounds) {
  PTSBE_REQUIRE(rounds >= 1, "memory experiment needs at least one round");
  MemoryExperiment exp;
  exp.code = code;
  exp.rounds = rounds;
  exp.ancillas_per_round =
      static_cast<unsigned>(code.x_supports.size() + code.z_supports.size());
  const unsigned total =
      code.n + rounds * exp.ancillas_per_round;
  PTSBE_REQUIRE(total <= 64, "record packing supports up to 64 qubits");

  Circuit c(total);
  c.append(synthesize_encoder(code));  // data block → |0_L⟩

  unsigned next_ancilla = code.n;
  for (unsigned r = 0; r < rounds; ++r) {
    // X-type checks: ancilla |+⟩ controls CX onto the data support; a
    // final H maps the accumulated phase parity to the Z basis.
    for (std::uint64_t support : code.x_supports) {
      const unsigned a = next_ancilla++;
      c.h(a);
      for (unsigned q = 0; q < code.n; ++q)
        if ((support >> q) & 1ULL) c.cx(a, q);
      c.h(a);
      c.measure(a);
    }
    // Z-type checks: data qubits control CX onto the |0⟩ ancilla, which
    // accumulates the bit parity directly.
    for (std::uint64_t support : code.z_supports) {
      const unsigned a = next_ancilla++;
      for (unsigned q = 0; q < code.n; ++q)
        if ((support >> q) & 1ULL) c.cx(q, a);
      c.measure(a);
    }
  }
  for (unsigned q = 0; q < code.n; ++q) c.measure(q);
  exp.circuit = std::move(c);
  return exp;
}

unsigned decode_memory_shot(const MemoryExperiment& experiment,
                            const CssLookupDecoder& decoder,
                            std::uint64_t record) {
  return decoder.logical_z_value(experiment.data_bits(record));
}

double memory_logical_error_rate(const MemoryExperiment& experiment,
                                 const CssLookupDecoder& decoder,
                                 const std::vector<std::uint64_t>& records) {
  PTSBE_REQUIRE(!records.empty(), "no records to decode");
  double errors = 0.0;
  for (std::uint64_t r : records)
    errors += decode_memory_shot(experiment, decoder, r) != 0 ? 1.0 : 0.0;
  return errors / static_cast<double>(records.size());
}

}  // namespace ptsbe::qec
