#include "ptsbe/qec/codes.hpp"

#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

namespace {

PauliString from_support(std::uint64_t support, bool x_type) {
  PauliString p;
  if (x_type) p.x = support;
  else p.z = support;
  return p;
}

}  // namespace

const std::string& to_string(CssBasis basis) {
  static const std::string kZ = "z";
  static const std::string kX = "x";
  return basis == CssBasis::kZ ? kZ : kX;
}

CssBasis basis_from_string(const std::string& name) {
  if (name == "z" || name == "Z") return CssBasis::kZ;
  if (name == "x" || name == "X") return CssBasis::kX;
  throw precondition_error("unknown readout basis '" + name +
                           "'; known bases: z x");
}

CssCode steane() {
  CssCode code;
  code.name = "steane";
  code.n = 7;
  // Hamming(7,4) rows: qubit q belongs to row k iff bit k of (q+1) is set.
  for (unsigned k = 0; k < 3; ++k) {
    std::uint64_t support = 0;
    for (unsigned q = 0; q < 7; ++q)
      if (((q + 1) >> k) & 1u) support |= 1ULL << q;
    code.x_supports.push_back(support);
    code.z_supports.push_back(support);
  }
  for (std::uint64_t s : code.x_supports)
    code.stabilizers.push_back(from_support(s, true));
  for (std::uint64_t s : code.z_supports)
    code.stabilizers.push_back(from_support(s, false));
  code.logical_x = from_support(0x7F, true);
  code.logical_z = from_support(0x7F, false);
  code.code_distance = 3;
  code.validate();
  return code;
}

CssCode rotated_surface_code(unsigned d) {
  PTSBE_REQUIRE(d >= 3 && d % 2 == 1 && d <= 8, "d must be odd, 3..7");
  CssCode code;
  code.name = "rotated_surface_" + std::to_string(d);
  code.n = d * d;
  const auto qubit = [d](unsigned r, unsigned c) { return r * d + c; };

  // Plaquette grid (d+1)×(d+1); plaquette (i,j) covers grid qubits among
  // {(i-1,j-1), (i-1,j), (i,j-1), (i,j)}. Bulk plaquettes alternate type by
  // (i+j) parity (even = X); 2-qubit boundary plaquettes survive only where
  // their type matches the boundary (X on top/bottom, Z on left/right).
  for (unsigned i = 0; i <= d; ++i) {
    for (unsigned j = 0; j <= d; ++j) {
      std::uint64_t support = 0;
      unsigned cells = 0;
      for (int dr = -1; dr <= 0; ++dr)
        for (int dc = -1; dc <= 0; ++dc) {
          const int r = static_cast<int>(i) + dr, c = static_cast<int>(j) + dc;
          if (r < 0 || c < 0 || r >= static_cast<int>(d) ||
              c >= static_cast<int>(d))
            continue;
          support |= 1ULL << qubit(static_cast<unsigned>(r),
                                   static_cast<unsigned>(c));
          ++cells;
        }
      const bool x_type = ((i + j) % 2) == 0;
      if (cells == 4) {
        (x_type ? code.x_supports : code.z_supports).push_back(support);
      } else if (cells == 2) {
        const bool top_bottom = (i == 0 || i == d);
        if (top_bottom && x_type) code.x_supports.push_back(support);
        if (!top_bottom && !x_type && (j == 0 || j == d))
          code.z_supports.push_back(support);
      }
    }
  }
  PTSBE_CHECK(code.x_supports.size() + code.z_supports.size() == code.n - 1,
              "rotated surface code generator count mismatch");
  for (std::uint64_t s : code.x_supports)
    code.stabilizers.push_back(from_support(s, true));
  for (std::uint64_t s : code.z_supports)
    code.stabilizers.push_back(from_support(s, false));
  // Logical Z along row 0 (crosses the X boundaries), logical X along
  // column 0 (crosses the Z boundaries).
  std::uint64_t zrow = 0, xcol = 0;
  for (unsigned c = 0; c < d; ++c) zrow |= 1ULL << qubit(0, c);
  for (unsigned r = 0; r < d; ++r) xcol |= 1ULL << qubit(r, 0);
  code.logical_z = from_support(zrow, false);
  code.logical_x = from_support(xcol, true);
  code.code_distance = d;
  code.validate();
  return code;
}

CssCode repetition_code(unsigned d) {
  PTSBE_REQUIRE(d >= 3 && d % 2 == 1 && d <= 63,
                "repetition distance must be odd, 3..63");
  CssCode code;
  code.name = "repetition_" + std::to_string(d);
  code.n = d;
  for (unsigned i = 0; i + 1 < d; ++i)
    code.z_supports.push_back(3ULL << i);  // Z_i Z_{i+1}
  for (std::uint64_t s : code.z_supports)
    code.stabilizers.push_back(from_support(s, false));
  code.logical_z = from_support(1, false);               // Z_0
  code.logical_x = from_support((1ULL << d) - 1, true);  // X⊗d
  code.code_distance = d;
  code.validate();
  return code;
}

CssCode make_code(const std::string& name, unsigned distance) {
  if (name == "repetition") return repetition_code(distance);
  if (name == "surface") return rotated_surface_code(distance);
  if (name == "steane") {
    PTSBE_REQUIRE(distance == 3, "steane is a fixed distance-3 code");
    return steane();
  }
  throw precondition_error("unknown code '" + name +
                           "'; known codes: repetition surface steane");
}

StabilizerCode five_qubit_code() {
  StabilizerCode code;
  code.name = "five_qubit";
  code.n = 5;
  code.stabilizers = {
      PauliString::parse("XZZXI"), PauliString::parse("IXZZX"),
      PauliString::parse("XIXZZ"), PauliString::parse("ZXIXZ")};
  code.logical_x = PauliString::parse("XXXXX");
  code.logical_z = PauliString::parse("ZZZZZ");
  code.validate();
  return code;
}

}  // namespace ptsbe::qec
