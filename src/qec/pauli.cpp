#include "ptsbe/qec/pauli.hpp"

#include <bit>

#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

namespace {
int pc(std::uint64_t v) { return std::popcount(v); }
}  // namespace

PauliString PauliString::parse(const std::string& text) {
  PauliString p;
  std::size_t start = 0;
  if (!text.empty() && (text[0] == '+' || text[0] == '-')) {
    p.negative = text[0] == '-';
    start = 1;
  }
  PTSBE_REQUIRE(text.size() - start >= 1 && text.size() - start <= 64,
                "Pauli string must have 1..64 characters");
  for (std::size_t i = start; i < text.size(); ++i) {
    const unsigned q = static_cast<unsigned>(i - start);
    switch (text[i]) {
      case 'I': break;
      case 'X': p.x |= 1ULL << q; break;
      case 'Y': p.x |= 1ULL << q; p.z |= 1ULL << q; break;
      case 'Z': p.z |= 1ULL << q; break;
      default: PTSBE_REQUIRE(false, "Pauli characters must be one of IXYZ");
    }
  }
  return p;
}

unsigned PauliString::weight() const noexcept {
  return static_cast<unsigned>(pc(x | z));
}

bool PauliString::commutes_with(const PauliString& other) const noexcept {
  return ((pc(x & other.z) + pc(z & other.x)) & 1) == 0;
}

PauliString PauliString::multiply(const PauliString& other) const {
  PauliString out;
  out.x = x ^ other.x;
  out.z = z ^ other.z;
  // Phase: i^{|x1z1| + |x2z2| - |x3z3| + 2|z1·x2|} — 0 or 2 (mod 4) when the
  // operands commute.
  const int e =
      ((pc(x & z) + pc(other.x & other.z) - pc(out.x & out.z) +
        2 * pc(z & other.x)) %
           4 +
       4) %
      4;
  PTSBE_REQUIRE(e == 0 || e == 2,
                "product of anticommuting Paulis is non-Hermitian");
  out.negative = negative ^ other.negative ^ (e == 2);
  return out;
}

std::string PauliString::to_string(unsigned n) const {
  std::string s;
  s += negative ? '-' : '+';
  for (unsigned q = 0; q < n; ++q) {
    const bool bx = (x >> q) & 1, bz = (z >> q) & 1;
    s += bx ? (bz ? 'Y' : 'X') : (bz ? 'Z' : 'I');
  }
  return s;
}

void PauliString::conj_h(unsigned q) {
  const std::uint64_t m = 1ULL << q;
  const bool bx = x & m, bz = z & m;
  if (bx && bz) negative = !negative;  // Y → -Y
  if (bx != bz) {
    x ^= m;
    z ^= m;
  }
}

void PauliString::conj_s(unsigned q) {
  const std::uint64_t m = 1ULL << q;
  if (x & m) {
    if (z & m) negative = !negative;  // Y → -X
    z ^= m;                           // X → Y
  }
}

void PauliString::conj_sdg(unsigned q) {
  const std::uint64_t m = 1ULL << q;
  if (x & m) {
    if (!(z & m)) negative = !negative;  // X → -Y
    z ^= m;                              // Y → X
  }
}

void PauliString::conj_cx(unsigned control, unsigned target) {
  const std::uint64_t mc = 1ULL << control, mt = 1ULL << target;
  const bool xc = x & mc, zc = z & mc, xt = x & mt, zt = z & mt;
  if (xc && zt && (xt == zc)) negative = !negative;
  if (xc) x ^= mt;
  if (zt) z ^= mc;
}

void PauliString::conj_cz(unsigned a, unsigned b) {
  conj_h(b);
  conj_cx(a, b);
  conj_h(b);
}

void PauliString::conj_swap(unsigned a, unsigned b) {
  const std::uint64_t ma = 1ULL << a, mb = 1ULL << b;
  const bool xa = x & ma, xb = x & mb, za = z & ma, zb = z & mb;
  if (xa != xb) x ^= ma | mb;
  if (za != zb) z ^= ma | mb;
}

void PauliString::conj_x(unsigned q) {
  if (z & (1ULL << q)) negative = !negative;
}

void PauliString::conj_z(unsigned q) {
  if (x & (1ULL << q)) negative = !negative;
}

}  // namespace ptsbe::qec
