#include "ptsbe/qec/stabilizer_code.hpp"

#include <functional>

#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

void StabilizerCode::validate() const {
  PTSBE_REQUIRE(n >= 2 && n <= 64, "code size out of range");
  PTSBE_REQUIRE(stabilizers.size() == n - 1,
                "an [[n,1,d]] code needs exactly n-1 stabilizer generators");
  for (std::size_t i = 0; i < stabilizers.size(); ++i) {
    PTSBE_REQUIRE(!stabilizers[i].is_identity(), "identity stabilizer");
    for (std::size_t j = i + 1; j < stabilizers.size(); ++j)
      PTSBE_REQUIRE(stabilizers[i].commutes_with(stabilizers[j]),
                    "stabilizers " + std::to_string(i) + " and " +
                        std::to_string(j) + " do not commute");
  }
  PTSBE_REQUIRE(!logical_x.commutes_with(logical_z),
                "logical X and Z must anticommute");
  for (std::size_t i = 0; i < stabilizers.size(); ++i) {
    PTSBE_REQUIRE(logical_x.commutes_with(stabilizers[i]),
                  "logical X must commute with stabilizer " + std::to_string(i));
    PTSBE_REQUIRE(logical_z.commutes_with(stabilizers[i]),
                  "logical Z must commute with stabilizer " + std::to_string(i));
  }
}

unsigned StabilizerCode::distance(unsigned max_weight) const {
  // Enumerate Paulis by increasing weight; the first one in N(S) \ S acting
  // nontrivially on the logical qubit sets the distance. Membership in S
  // itself is excluded by the "acts nontrivially" test (anticommutes with a
  // logical operator).
  for (unsigned w = 1; w <= max_weight; ++w) {
    bool found = false;
    std::vector<unsigned> positions;
    std::function<bool(unsigned)> visit = [&](unsigned start) -> bool {
      if (positions.size() == w) {
        // Try all 3^w Pauli letterings on the chosen support.
        std::vector<unsigned> letters(w, 1);
        while (true) {
          PauliString p;
          for (unsigned i = 0; i < w; ++i) {
            const std::uint64_t m = 1ULL << positions[i];
            if (letters[i] & 1) p.x |= m;           // X or Y
            if (letters[i] >= 2) p.z |= m;          // Y(3)? map 1=X,2=Z,3=Y
          }
          bool in_normaliser = true;
          for (const PauliString& s : stabilizers)
            if (!p.commutes_with(s)) {
              in_normaliser = false;
              break;
            }
          if (in_normaliser &&
              (!p.commutes_with(logical_x) || !p.commutes_with(logical_z)))
            return true;
          // Next lettering in {1,2,3}^w.
          unsigned i = 0;
          for (; i < w; ++i) {
            if (letters[i] < 3) {
              ++letters[i];
              break;
            }
            letters[i] = 1;
          }
          if (i == w) return false;
        }
      }
      for (unsigned q = start; q < n; ++q) {
        positions.push_back(q);
        if (visit(q + 1)) return true;
        positions.pop_back();
      }
      return false;
    };
    found = visit(0);
    if (found) return w;
  }
  return 0;  // distance exceeds max_weight
}

namespace {

/// Reduction context: applies gates to every tracked row and records them.
struct Reducer {
  std::vector<PauliString> rows;
  Circuit recorded;

  explicit Reducer(unsigned n) : recorded(n) {}

  void h(unsigned q) {
    for (auto& r : rows) r.conj_h(q);
    recorded.h(q);
  }
  void sdg(unsigned q) {
    for (auto& r : rows) r.conj_sdg(q);
    recorded.sdg(q);
  }
  void s(unsigned q) {
    for (auto& r : rows) r.conj_s(q);
    recorded.s(q);
  }
  void cx(unsigned a, unsigned b) {
    for (auto& r : rows) r.conj_cx(a, b);
    recorded.cx(a, b);
  }
  void cz(unsigned a, unsigned b) {
    for (auto& r : rows) r.conj_cz(a, b);
    recorded.cz(a, b);
  }
  void swap(unsigned a, unsigned b) {
    for (auto& r : rows) r.conj_swap(a, b);
    recorded.swap(a, b);
  }
  void x(unsigned q) {
    for (auto& r : rows) r.conj_x(q);
    recorded.x(q);
  }
  void z(unsigned q) {
    for (auto& r : rows) r.conj_z(q);
    recorded.z(q);
  }
};

/// Reduce the code's target Pauli set to {Z_0..Z_{n-2}, X_{n-1}, Z_{n-1}},
/// returning the recorded gate sequence (as applied, in order).
Circuit reduce_to_trivial(const StabilizerCode& code) {
  code.validate();
  const unsigned n = code.n;
  Reducer red(n);
  red.rows = code.stabilizers;
  red.rows.push_back(code.logical_x);  // row n-1
  red.rows.push_back(code.logical_z);  // row n

  // --- Phase 1: stabilizer i → +Z_i -------------------------------------
  for (unsigned i = 0; i + 1 < n; ++i) {
    // Clear residual Z support on already-fixed columns by multiplying with
    // the fixed rows (a change of generating set, not a gate).
    for (unsigned j = 0; j < i; ++j)
      if ((red.rows[i].z >> j) & 1ULL)
        red.rows[i] = red.rows[i].multiply(red.rows[j]);
    PTSBE_CHECK((red.rows[i].x & ((1ULL << i) - 1)) == 0,
                "fixed-column X support should be impossible");

    const std::uint64_t tail = ~((1ULL << i) - 1);
    if ((red.rows[i].x & tail) == 0) {
      PTSBE_CHECK((red.rows[i].z & tail) != 0,
                  "stabilizer generators are not independent");
      unsigned q = i;
      while (!((red.rows[i].z >> q) & 1ULL)) ++q;
      red.h(q);
    }
    unsigned pivot = i;
    while (!((red.rows[i].x >> pivot) & 1ULL)) ++pivot;
    if (pivot != i) red.swap(i, pivot);
    for (unsigned q = i + 1; q < n; ++q)
      if ((red.rows[i].x >> q) & 1ULL) red.cx(i, q);
    for (unsigned q = i + 1; q < n; ++q)
      if ((red.rows[i].z >> q) & 1ULL) red.cz(i, q);
    if ((red.rows[i].z >> i) & 1ULL) red.sdg(i);  // Y_i → X_i
    red.h(i);                                     // X_i → Z_i
    if (red.rows[i].negative) red.x(i);
    PTSBE_CHECK(red.rows[i].x == 0 && red.rows[i].z == (1ULL << i) &&
                    !red.rows[i].negative,
                "stabilizer row failed to reduce");
  }

  // --- Phase 2: logical pair → (X_{n-1}, Z_{n-1}) ------------------------
  const unsigned t = n - 1;
  for (unsigned r : {n - 1, n}) {
    for (unsigned j = 0; j + 1 < n; ++j)
      if ((red.rows[r].z >> j) & 1ULL)
        red.rows[r] = red.rows[r].multiply(red.rows[j]);
    PTSBE_CHECK((red.rows[r].x & ~(1ULL << t)) == 0 &&
                    (red.rows[r].z & ~(1ULL << t)) == 0,
                "logical row not confined to the input qubit");
  }
  // Single-qubit Clifford word in {h, sdg} mapping the pair's types to
  // (X, Z); at most 3 letters are needed (the group mod Paulis is S_3).
  const auto type_of = [&](unsigned r) {
    const bool bx = (red.rows[r].x >> t) & 1ULL, bz = (red.rows[r].z >> t) & 1ULL;
    return (bx ? 1 : 0) | (bz ? 2 : 0);  // 1=X, 2=Z, 3=Y
  };
  for (int step = 0; step < 8 && !(type_of(n - 1) == 1 && type_of(n) == 2);
       ++step) {
    if (type_of(n - 1) != 1) {
      // Rotate X̄'s type: h swaps X↔Z, sdg swaps X↔Y.
      if (type_of(n - 1) == 2) red.h(t);
      else red.sdg(t);
    } else {
      // X̄ is X and Z̄ is Y (anticommutation forbids Z̄ = X). The word
      // h·sdg·h acts as a √X conjugation: X→X, Y→∓Z, fixing the pair's
      // types in one step (signs are corrected below).
      red.h(t);
      red.sdg(t);
      red.h(t);
    }
  }
  PTSBE_CHECK(type_of(n - 1) == 1 && type_of(n) == 2,
              "logical pair failed to reduce to (X, Z)");
  if (red.rows[n - 1].negative) red.z(t);  // flips X sign only
  if (red.rows[n].negative) red.x(t);      // flips Z sign only
  PTSBE_CHECK(!red.rows[n - 1].negative && !red.rows[n].negative,
              "logical signs failed to fix");
  return red.recorded;
}

}  // namespace

Circuit invert_clifford_circuit(const Circuit& circuit) {
  Circuit out(circuit.num_qubits());
  const auto& ops = circuit.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    PTSBE_REQUIRE(it->kind == OpKind::kGate, "cannot invert measurements");
    const std::string& g = it->name;
    if (g == "h") out.h(it->qubits[0]);
    else if (g == "s") out.sdg(it->qubits[0]);
    else if (g == "sdg") out.s(it->qubits[0]);
    else if (g == "sx") out.sxdg(it->qubits[0]);
    else if (g == "sxdg") out.sx(it->qubits[0]);
    else if (g == "sy") out.sydg(it->qubits[0]);
    else if (g == "sydg") out.sy(it->qubits[0]);
    else if (g == "x") out.x(it->qubits[0]);
    else if (g == "y") out.y(it->qubits[0]);
    else if (g == "z") out.z(it->qubits[0]);
    else if (g == "cx") out.cx(it->qubits[0], it->qubits[1]);
    else if (g == "cz") out.cz(it->qubits[0], it->qubits[1]);
    else if (g == "swap") out.swap(it->qubits[0], it->qubits[1]);
    else PTSBE_REQUIRE(false, "cannot invert gate '" + g + "'");
  }
  return out;
}

Circuit synthesize_encoder(const StabilizerCode& code) {
  // reduce_to_trivial records R with R·S_i·R† = Z_i; the encoder is R†,
  // which as a circuit is the recorded list reversed with inverted gates.
  return invert_clifford_circuit(reduce_to_trivial(code));
}

Circuit synthesize_decoder(const StabilizerCode& code) {
  return reduce_to_trivial(code);
}

}  // namespace ptsbe::qec
