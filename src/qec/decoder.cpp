#include "ptsbe/qec/decoder.hpp"

#include <functional>
#include <vector>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

CssLookupDecoder::CssLookupDecoder(const CssCode& code,
                                   unsigned max_error_weight)
    : code_(code) {
  PTSBE_REQUIRE(!code_.z_supports.empty(), "decoder needs Z-type stabilizers");
  // Enumerate X-error masks by increasing weight so the first entry per
  // syndrome is minimum weight.
  table_[0] = 0;
  std::vector<unsigned> positions;
  for (unsigned w = 1; w <= max_error_weight; ++w) {
    positions.clear();
    std::function<void(unsigned)> visit = [&](unsigned start) {
      if (positions.size() == w) {
        std::uint64_t mask = 0;
        for (unsigned q : positions) mask |= 1ULL << q;
        const std::uint64_t s = syndrome(mask);
        table_.emplace(s, mask);  // emplace keeps the first (lightest) entry
        return;
      }
      for (unsigned q = start; q < code_.n; ++q) {
        positions.push_back(q);
        visit(q + 1);
        positions.pop_back();
      }
    };
    visit(0);
  }
}

std::uint64_t CssLookupDecoder::syndrome(std::uint64_t outcome) const {
  std::uint64_t s = 0;
  for (std::size_t j = 0; j < code_.z_supports.size(); ++j)
    s |= static_cast<std::uint64_t>(parity64(outcome & code_.z_supports[j]))
         << j;
  return s;
}

std::uint64_t CssLookupDecoder::correction(std::uint64_t syndrome_bits) const {
  const auto it = table_.find(syndrome_bits);
  return it == table_.end() ? 0 : it->second;
}

unsigned CssLookupDecoder::logical_z_value(std::uint64_t outcome) const {
  const std::uint64_t corrected = outcome ^ correction(syndrome(outcome));
  return parity64(corrected & code_.logical_z.z);
}

}  // namespace ptsbe::qec
