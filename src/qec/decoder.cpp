#include "ptsbe/qec/decoder.hpp"

#include <functional>
#include <utility>
#include <vector>

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

namespace {

/// Enumerate error masks by increasing weight so the first entry per
/// syndrome is minimum weight (`emplace` keeps the first).
std::unordered_map<std::uint64_t, std::uint64_t> build_min_weight_table(
    const std::vector<std::uint64_t>& supports, unsigned num_qubits,
    unsigned max_error_weight) {
  PTSBE_REQUIRE(!supports.empty(), "decoder needs at least one check support");
  std::unordered_map<std::uint64_t, std::uint64_t> table;
  table[0] = 0;
  std::vector<unsigned> positions;
  for (unsigned w = 1; w <= max_error_weight; ++w) {
    positions.clear();
    std::function<void(unsigned)> visit = [&](unsigned start) {
      if (positions.size() == w) {
        std::uint64_t mask = 0;
        for (unsigned q : positions) mask |= 1ULL << q;
        table.emplace(css_syndrome(supports, mask), mask);
        return;
      }
      for (unsigned q = start; q < num_qubits; ++q) {
        positions.push_back(q);
        visit(q + 1);
        positions.pop_back();
      }
    };
    visit(0);
  }
  return table;
}

const std::string kLookupName = "lookup";

}  // namespace

std::uint64_t css_syndrome(const std::vector<std::uint64_t>& supports,
                           std::uint64_t outcome) {
  std::uint64_t s = 0;
  for (std::size_t j = 0; j < supports.size(); ++j)
    s |= static_cast<std::uint64_t>(parity64(outcome & supports[j])) << j;
  return s;
}

LookupDecoder::LookupDecoder(std::vector<std::uint64_t> check_supports,
                             unsigned num_qubits, unsigned max_error_weight)
    : table_(build_min_weight_table(check_supports, num_qubits,
                                    max_error_weight)) {}

const std::string& LookupDecoder::name() const noexcept { return kLookupName; }

std::uint64_t LookupDecoder::decode(std::uint64_t syndrome_bits) const {
  const auto it = table_.find(syndrome_bits);
  return it == table_.end() ? 0 : it->second;
}

CssLookupDecoder::CssLookupDecoder(const CssCode& code,
                                   unsigned max_error_weight)
    : code_(code) {
  PTSBE_REQUIRE(!code_.z_supports.empty(), "decoder needs Z-type stabilizers");
  table_ = build_min_weight_table(code_.z_supports, code_.n, max_error_weight);
}

std::uint64_t CssLookupDecoder::syndrome(std::uint64_t outcome) const {
  return css_syndrome(code_.z_supports, outcome);
}

std::uint64_t CssLookupDecoder::correction(std::uint64_t syndrome_bits) const {
  const auto it = table_.find(syndrome_bits);
  return it == table_.end() ? 0 : it->second;
}

unsigned CssLookupDecoder::logical_z_value(std::uint64_t outcome) const {
  const std::uint64_t corrected = outcome ^ correction(syndrome(outcome));
  return parity64(corrected & code_.logical_z.z);
}

const std::string& CssLookupDecoder::name() const noexcept {
  return kLookupName;
}

std::unique_ptr<Decoder> make_decoder(const std::string& kind,
                                      const CssCode& code, CssBasis basis) {
  const std::vector<std::uint64_t>& supports = code.check_supports(basis);
  PTSBE_REQUIRE(!supports.empty(),
                "code '" + code.name + "' has no " + to_string(basis) +
                    "-basis checks to decode");
  if (kind == "lookup") {
    const unsigned correctable =
        code.code_distance >= 3 ? (code.code_distance - 1) / 2 : 1;
    return std::make_unique<LookupDecoder>(supports, code.n, correctable);
  }
  if (kind == "union-find")
    return std::make_unique<UnionFindDecoder>(supports, code.n);
  throw precondition_error("unknown decoder '" + kind +
                           "'; known decoders: lookup union-find");
}

}  // namespace ptsbe::qec
