#include "ptsbe/qec/spacetime.hpp"

#include "ptsbe/common/bits.hpp"
#include "ptsbe/common/error.hpp"

namespace ptsbe::qec {

SpatialShotDecoder::SpatialShotDecoder(const MemoryExperiment& experiment,
                                       std::unique_ptr<Decoder> decoder)
    : experiment_(&experiment), decoder_(std::move(decoder)) {
  PTSBE_REQUIRE(decoder_ != nullptr,
                "SpatialShotDecoder needs a syndrome decoder");
}

const std::string& SpatialShotDecoder::name() const noexcept {
  return decoder_->name();
}

unsigned SpatialShotDecoder::decode_shot(std::uint64_t record) const {
  return decode_memory_shot(*experiment_, *decoder_, record);
}

SpaceTimeUnionFindDecoder::SpaceTimeUnionFindDecoder(
    const MemoryExperiment& experiment)
    : experiment_(&experiment) {
  const CssCode& code = experiment.code;
  const auto& supports = code.check_supports(experiment.basis);
  PTSBE_REQUIRE(!supports.empty(),
                "code '" + code.name + "' has no " +
                    to_string(experiment.basis) + "-basis checks");
  checks_ = static_cast<unsigned>(supports.size());
  // Ancillas within a round are laid out X-checks first, then Z-checks
  // (make_memory_experiment); the basis selects which block is decoded.
  check_offset_ = experiment.basis == CssBasis::kZ
                      ? static_cast<unsigned>(code.x_supports.size())
                      : 0;
  const unsigned layers = experiment.rounds + 1;
  num_detectors_ = checks_ * layers;
  // Data qubits shared by two basis checks also admit *timing* faults: an
  // error landing between the two checks' extractions within one round is
  // seen by the later-extracted check that round but by the earlier one
  // only the round after, lighting the diagonal pair
  // D(c_later, r) / D(c_earlier, r+1). Without these edges union-find
  // matches each diagonal defect to the boundary separately — through the
  // logical support at O(p) — which flattens every curve to linear.
  // Extraction order within a round is check-index order
  // (make_memory_experiment), so earlier/later is min/max index.
  struct DiagonalPair {
    unsigned q, c_earlier, c_later;
  };
  std::vector<DiagonalPair> diagonals;
  for (unsigned q = 0; q < code.n; ++q) {
    unsigned count = 0, first = 0, last = 0;
    for (unsigned c = 0; c < checks_; ++c)
      if ((supports[c] >> q) & 1ULL) {
        if (count == 0) first = c;
        last = c;
        ++count;
      }
    if (count == 2) diagonals.push_back({q, first, last});
    PTSBE_REQUIRE(count <= 2,
                  "space-time graph needs each data qubit in <= 2 basis "
                  "checks (matchable timing faults)");
  }
  num_mechanisms_ = code.n * layers + checks_ * experiment.rounds +
                    static_cast<unsigned>(diagonals.size()) *
                        experiment.rounds;
  PTSBE_REQUIRE(num_detectors_ <= 63,
                "space-time graph needs <= 63 detectors; got " +
                    std::to_string(num_detectors_));
  PTSBE_REQUIRE(num_mechanisms_ <= 64,
                "space-time graph needs <= 64 error mechanisms; got " +
                    std::to_string(num_mechanisms_));

  // Mechanism ids: space edges first (layer-major, one per data qubit per
  // layer), then time edges (round-major, one per check per round), then
  // diagonal edges (round-major, one per shared data qubit per round).
  const auto space_mech = [&](unsigned layer, unsigned q) {
    return layer * code.n + q;
  };
  const auto time_mech = [&](unsigned round, unsigned c) {
    return code.n * layers + round * checks_ + c;
  };
  const auto diag_mech = [&](unsigned round, unsigned d) {
    return code.n * layers + checks_ * experiment.rounds +
           round * static_cast<unsigned>(diagonals.size()) + d;
  };
  std::vector<std::uint64_t> detector_supports(num_detectors_, 0);
  for (unsigned t = 0; t < layers; ++t) {
    for (unsigned c = 0; c < checks_; ++c) {
      std::uint64_t& det = detector_supports[t * checks_ + c];
      for (unsigned q = 0; q < code.n; ++q)
        if ((supports[c] >> q) & 1ULL) det |= 1ULL << space_mech(t, q);
      if (t < experiment.rounds) det |= 1ULL << time_mech(t, c);
      if (t > 0) det |= 1ULL << time_mech(t - 1, c);
    }
  }
  for (unsigned r = 0; r < experiment.rounds; ++r) {
    for (unsigned d = 0; d < diagonals.size(); ++d) {
      const DiagonalPair& pair = diagonals[d];
      detector_supports[r * checks_ + pair.c_later] |= 1ULL << diag_mech(r, d);
      detector_supports[(r + 1) * checks_ + pair.c_earlier] |=
          1ULL << diag_mech(r, d);
    }
  }
  // A space or diagonal edge persists to the final readout, so every
  // layer's copy of a logical-support qubit crosses the logical cut.
  const std::uint64_t logical = code.logical_support(experiment.basis);
  for (unsigned t = 0; t < layers; ++t)
    for (unsigned q = 0; q < code.n; ++q)
      if ((logical >> q) & 1ULL)
        logical_mechanisms_ |= 1ULL << space_mech(t, q);
  for (unsigned r = 0; r < experiment.rounds; ++r)
    for (unsigned d = 0; d < diagonals.size(); ++d)
      if ((logical >> diagonals[d].q) & 1ULL)
        logical_mechanisms_ |= 1ULL << diag_mech(r, d);

  uf_ = std::make_unique<UnionFindDecoder>(detector_supports, num_mechanisms_);
}

const std::string& SpaceTimeUnionFindDecoder::name() const noexcept {
  static const std::string kName = "st-union-find";
  return kName;
}

std::uint64_t SpaceTimeUnionFindDecoder::detectors(
    std::uint64_t record) const {
  const MemoryExperiment& exp = *experiment_;
  std::uint64_t det = 0;
  std::uint64_t prev = 0;
  for (unsigned r = 0; r < exp.rounds; ++r) {
    std::uint64_t s = 0;
    for (unsigned c = 0; c < checks_; ++c)
      s |= ((record >> exp.ancilla_bit(r, check_offset_ + c)) & 1ULL) << c;
    det |= (s ^ prev) << (r * checks_);
    prev = s;
  }
  const auto& supports = exp.code.check_supports(exp.basis);
  const std::uint64_t s_final = css_syndrome(supports, exp.data_bits(record));
  det |= (s_final ^ prev) << (exp.rounds * checks_);
  return det;
}

unsigned SpaceTimeUnionFindDecoder::decode_shot(std::uint64_t record) const {
  const std::uint64_t correction = uf_->decode(detectors(record));
  const unsigned raw = parity64(experiment_->data_bits(record) &
                                experiment_->code.logical_support(
                                    experiment_->basis));
  return raw ^ parity64(correction & logical_mechanisms_);
}

std::unique_ptr<ShotDecoder> make_shot_decoder(
    const std::string& kind, const MemoryExperiment& experiment) {
  if (kind == "st-union-find")
    return std::make_unique<SpaceTimeUnionFindDecoder>(experiment);
  if (kind == "lookup" || kind == "union-find")
    return std::make_unique<SpatialShotDecoder>(
        experiment, make_decoder(kind, experiment.code, experiment.basis));
  throw precondition_error("unknown decoder '" + kind +
                           "'; known decoders: lookup union-find "
                           "st-union-find");
}

}  // namespace ptsbe::qec
