#pragma once

/// \file ptq.hpp
/// \brief The `.ptq` circuit text format — circuits as *data*.
///
/// Every circuit in this codebase used to be hand-built C++; `.ptq` is the
/// ingestion boundary that makes noisy programs portable between tools,
/// job files and the `ptsbe::serve` engine. The format is line-oriented
/// (Stim-style): one operation per line, `#` comments, named channel
/// declarations, and noise-site lines that attach a declared channel after
/// the preceding operation — exactly the `NoisyCircuit` structure
/// `NoiseModel::apply` produces.
///
/// ```
/// ptq 1
/// qubits 3
/// channel g depolarizing 0.01
/// channel ro bit_flip 0.005
/// h 0
/// noise g 0
/// cx 0 1
/// noise g 0
/// noise g 1
/// measure 0
/// noise ro 0
/// ```
///
/// Grammar (tokens are whitespace-separated; every line is one of):
///  - `ptq 1`                      — header, required first line
///  - `qubits <n>`                 — width, required second line
///  - `channel <id> <kind> <params…>` — named channel from the
///    `ptsbe::channels` factory zoo (`depolarizing p`, `depolarizing2 p`,
///    `bit_flip p`, `phase_flip p`, `bit_phase_flip p`,
///    `pauli px py pz`, `amplitude_damping g`, `phase_damping l`,
///    `correlated_xx_zz p`, `thermal_relaxation t t1 t2`,
///    `coherent_overrotation p theta`)
///  - `channel <id> kraus <name> <num_ops> <dim> <re im …>` — raw Kraus
///    form (num_ops · dim² (re, im) pairs, row-major); covers channels the
///    factory zoo cannot express and is what `write_circuit` emits
///  - `<gate> <q…> [<params…>]`    — any gate of `circuit/gates.hpp` by
///    mnemonic (`i x y z h s sdg t tdg sx sxdg sy sydg` · `rx ry rz p`
///    with one angle · `u3` with three · `cx cy cz swap iswap`)
///  - `unitary <name> <k> <q…> <nparams> <params…> <re im …>` — arbitrary
///    k-qubit gate with an explicit 2^k×2^k matrix
///  - `noise <id> <q…>`            — noise site on the declared channel
///    `<id>`, attached after the most recent operation line (before the
///    circuit when none precedes it)
///  - `measure <q>`                — terminal measurement
///
/// Round-trip contract: `parse_circuit(write_circuit(c))` reproduces `c`
/// *exactly* — op names, qubit lists, params, matrices, site order and
/// channel contents compare bit-identical (`programs_equal`). Numbers are
/// printed with 17 significant digits, which IEEE-754 round-trips.
///
/// Malformed input throws `ParseError` carrying the 1-based line and
/// column of the offending token ("7:12: unknown gate 'hh'").

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "ptsbe/common/error.hpp"
#include "ptsbe/noise/noise_model.hpp"

namespace ptsbe::io {

/// Error thrown for malformed `.ptq` input. `what()` is
/// "<source>:<line>:<column>: <message>" (source omitted when empty);
/// line/column are 1-based and point at the offending token.
class ParseError : public runtime_failure {
 public:
  ParseError(const std::string& source, std::size_t line, std::size_t column,
             const std::string& message);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Parse `.ptq` text into the noisy program it describes. `source_name`
/// only decorates diagnostics (a file path, "<stdin>", …).
/// \throws ParseError on malformed input.
[[nodiscard]] NoisyCircuit parse_circuit(std::string_view text,
                                         const std::string& source_name = "");

/// Parse the `.ptq` file at `path`.
/// \throws runtime_failure when the file cannot be read; ParseError on
///         malformed content (decorated with `path`).
[[nodiscard]] NoisyCircuit parse_circuit_file(const std::string& path);

/// Serialise `noisy` as `.ptq` text. Channels are emitted in raw Kraus
/// form (one declaration per distinct channel handle), gates by mnemonic
/// when the stored matrix is bit-identical to the gate library's
/// reconstruction and as `unitary` lines otherwise, so the output always
/// parses back to an exactly equal program.
/// \throws precondition_error when `noisy`'s sites are not in program
///         order (such programs have no line-oriented representation that
///         preserves site indices).
[[nodiscard]] std::string write_circuit(const NoisyCircuit& noisy);

/// Write `noisy` to `os` (what `write_circuit` builds its string with).
void write_circuit(std::ostream& os, const NoisyCircuit& noisy);

/// Exact structural equality of two noisy programs: width, operation list
/// (kind, name, qubits, params, matrix — bitwise), and site list
/// (after_op, qubits, channel name + Kraus matrices — bitwise). This is
/// the `.ptq` round-trip oracle.
[[nodiscard]] bool programs_equal(const NoisyCircuit& a, const NoisyCircuit& b);

/// Exact structural equality of two coherent circuits (the op-list part of
/// `programs_equal`).
[[nodiscard]] bool circuits_equal(const Circuit& a, const Circuit& b);

}  // namespace ptsbe::io
