#include "ptsbe/io/ptq.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "ptsbe/circuit/gates.hpp"
#include "ptsbe/noise/channels.hpp"

namespace ptsbe::io {

namespace {

// ---------------------------------------------------------------------------
// Number formatting/equality: 17 significant digits round-trip every finite
// double exactly, which is what makes parse(write(c)) == c bit-precise.
// ---------------------------------------------------------------------------

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool exact_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i)
    if (da[i].real() != db[i].real() || da[i].imag() != db[i].imag())
      return false;
  return true;
}

bool channels_equal(const KrausChannel& a, const KrausChannel& b) {
  if (a.name() != b.name() || a.arity() != b.arity() ||
      a.num_branches() != b.num_branches())
    return false;
  for (std::size_t i = 0; i < a.num_branches(); ++i)
    if (!exact_equal(a.kraus(i), b.kraus(i))) return false;
  return true;
}

bool token_safe(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (std::isspace(static_cast<unsigned char>(c)) || c == '#') return false;
  return true;
}

// ---------------------------------------------------------------------------
// Gate and channel tables — the single place the text format learns the
// libraries' vocabularies.
// ---------------------------------------------------------------------------

struct GateKind {
  unsigned arity;
  unsigned nparams;
  Matrix (*make)(const std::vector<double>& p);
};

const std::unordered_map<std::string, GateKind>& gate_table() {
  static const std::unordered_map<std::string, GateKind> table = {
      {"i", {1, 0, [](const std::vector<double>&) { return gates::I(); }}},
      {"x", {1, 0, [](const std::vector<double>&) { return gates::X(); }}},
      {"y", {1, 0, [](const std::vector<double>&) { return gates::Y(); }}},
      {"z", {1, 0, [](const std::vector<double>&) { return gates::Z(); }}},
      {"h", {1, 0, [](const std::vector<double>&) { return gates::H(); }}},
      {"s", {1, 0, [](const std::vector<double>&) { return gates::S(); }}},
      {"sdg", {1, 0, [](const std::vector<double>&) { return gates::Sdg(); }}},
      {"t", {1, 0, [](const std::vector<double>&) { return gates::T(); }}},
      {"tdg", {1, 0, [](const std::vector<double>&) { return gates::Tdg(); }}},
      {"sx", {1, 0, [](const std::vector<double>&) { return gates::SX(); }}},
      {"sxdg", {1, 0, [](const std::vector<double>&) { return gates::SXdg(); }}},
      {"sy", {1, 0, [](const std::vector<double>&) { return gates::SY(); }}},
      {"sydg", {1, 0, [](const std::vector<double>&) { return gates::SYdg(); }}},
      {"rx", {1, 1, [](const std::vector<double>& p) { return gates::RX(p[0]); }}},
      {"ry", {1, 1, [](const std::vector<double>& p) { return gates::RY(p[0]); }}},
      {"rz", {1, 1, [](const std::vector<double>& p) { return gates::RZ(p[0]); }}},
      {"p", {1, 1, [](const std::vector<double>& p) { return gates::P(p[0]); }}},
      {"u3",
       {1, 3,
        [](const std::vector<double>& p) { return gates::U3(p[0], p[1], p[2]); }}},
      {"cx", {2, 0, [](const std::vector<double>&) { return gates::CX(); }}},
      {"cy", {2, 0, [](const std::vector<double>&) { return gates::CY(); }}},
      {"cz", {2, 0, [](const std::vector<double>&) { return gates::CZ(); }}},
      {"swap", {2, 0, [](const std::vector<double>&) { return gates::SWAP(); }}},
      {"iswap", {2, 0, [](const std::vector<double>&) { return gates::ISWAP(); }}},
  };
  return table;
}

struct ChannelKind {
  unsigned nparams;
  ChannelPtr (*make)(const std::vector<double>& p);
};

const std::unordered_map<std::string, ChannelKind>& channel_table() {
  static const std::unordered_map<std::string, ChannelKind> table = {
      {"depolarizing",
       {1, [](const std::vector<double>& p) { return channels::depolarizing(p[0]); }}},
      {"depolarizing2",
       {1, [](const std::vector<double>& p) { return channels::depolarizing2(p[0]); }}},
      {"bit_flip",
       {1, [](const std::vector<double>& p) { return channels::bit_flip(p[0]); }}},
      {"phase_flip",
       {1, [](const std::vector<double>& p) { return channels::phase_flip(p[0]); }}},
      {"bit_phase_flip",
       {1, [](const std::vector<double>& p) { return channels::bit_phase_flip(p[0]); }}},
      {"pauli",
       {3,
        [](const std::vector<double>& p) {
          return channels::pauli_channel(p[0], p[1], p[2]);
        }}},
      {"amplitude_damping",
       {1,
        [](const std::vector<double>& p) { return channels::amplitude_damping(p[0]); }}},
      {"phase_damping",
       {1, [](const std::vector<double>& p) { return channels::phase_damping(p[0]); }}},
      {"correlated_xx_zz",
       {1,
        [](const std::vector<double>& p) { return channels::correlated_xx_zz(p[0]); }}},
      {"thermal_relaxation",
       {3,
        [](const std::vector<double>& p) {
          return channels::thermal_relaxation(p[0], p[1], p[2]);
        }}},
      {"coherent_overrotation",
       {2,
        [](const std::vector<double>& p) {
          return channels::coherent_overrotation(p[0], p[1]);
        }}},
  };
  return table;
}

// ---------------------------------------------------------------------------
// Tokenizer: one line at a time, tracking the 1-based start column of every
// token so diagnostics can point at the exact offender.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t column = 1;
};

std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == '#') break;  // comment to end of line
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != '#')
      ++i;
    out.push_back({std::string(line.substr(start, i - start)), start + 1});
  }
  return out;
}

/// Parser state for one `.ptq` document. Line-oriented recursive descent:
/// each body line dispatches on its first token.
class Parser {
 public:
  Parser(std::string_view text, std::string source)
      : source_(std::move(source)) {
    std::size_t begin = 0;
    while (begin <= text.size()) {
      std::size_t end = text.find('\n', begin);
      if (end == std::string_view::npos) end = text.size();
      lines_.push_back(text.substr(begin, end - begin));
      if (end == text.size()) break;
      begin = end + 1;
    }
  }

  NoisyCircuit parse() {
    parse_header();
    parse_qubits();
    for (; line_no_ <= lines_.size(); ++line_no_) {
      tokens_ = tokenize(lines_[line_no_ - 1]);
      cursor_ = 0;
      if (tokens_.empty()) continue;
      parse_body_line();
      reject_trailing();
    }
    return NoisyCircuit(std::move(circuit_), std::move(sites_));
  }

 private:
  [[noreturn]] void fail(std::size_t column, const std::string& msg) const {
    // Clamp past-EOF positions (e.g. a missing 'qubits' line) to the last
    // real line so diagnostics always point into the input.
    const std::size_t line =
        line_no_ > lines_.size() ? std::max<std::size_t>(lines_.size(), 1)
                                 : line_no_;
    throw ParseError(source_, line, column, msg);
  }

  /// Column just past the last token of the current line (where a missing
  /// token would have started).
  [[nodiscard]] std::size_t end_column() const {
    if (tokens_.empty()) return 1;
    const Token& last = tokens_.back();
    return last.column + last.text.size();
  }

  const Token& need(const std::string& what) {
    if (cursor_ >= tokens_.size())
      fail(end_column(), "expected " + what);
    return tokens_[cursor_++];
  }

  std::uint64_t need_uint(const std::string& what, std::uint64_t max) {
    const Token& tok = need(what);
    const char* begin = tok.text.c_str();
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(begin, &end, 10);
    if (end != begin + tok.text.size() || tok.text[0] == '-' || errno == ERANGE)
      fail(tok.column, "expected " + what + ", got '" + tok.text + "'");
    if (v > max)
      fail(tok.column, what + " " + tok.text + " out of range (max " +
                           std::to_string(max) + ")");
    return v;
  }

  double need_double(const std::string& what) {
    const Token& tok = need(what);
    const char* begin = tok.text.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end != begin + tok.text.size())
      fail(tok.column, "expected " + what + ", got '" + tok.text + "'");
    return v;
  }

  void reject_trailing() {
    if (cursor_ < tokens_.size())
      fail(tokens_[cursor_].column,
           "unexpected trailing token '" + tokens_[cursor_].text + "'");
  }

  /// Advance to the next line holding any tokens; false at end of input.
  bool next_meaningful_line() {
    for (; line_no_ <= lines_.size(); ++line_no_) {
      tokens_ = tokenize(lines_[line_no_ - 1]);
      cursor_ = 0;
      if (!tokens_.empty()) return true;
    }
    return false;
  }

  void parse_header() {
    if (!next_meaningful_line())
      throw ParseError(source_, 1, 1,
                       "empty .ptq input (missing 'ptq 1' header)");
    const Token& tok = need("'ptq <version>' header");
    if (tok.text != "ptq")
      fail(tok.column, "expected 'ptq <version>' header, got '" + tok.text + "'");
    const std::uint64_t version = need_uint("ptq format version", 1u << 20);
    if (version != 1)
      fail(tokens_[cursor_ - 1].column,
           "unsupported ptq format version " + std::to_string(version) +
               " (this parser reads version 1)");
    reject_trailing();
    ++line_no_;
  }

  void parse_qubits() {
    if (!next_meaningful_line()) fail(1, "missing 'qubits <n>' line");
    const Token& tok = need("'qubits <n>' line");
    if (tok.text != "qubits")
      fail(tok.column, "expected 'qubits <n>' line, got '" + tok.text + "'");
    // Records are 64-bit, so 64 qubits is the honest ceiling of every
    // sampler in the codebase.
    num_qubits_ = static_cast<unsigned>(need_uint("qubit count", 64));
    circuit_ = Circuit(num_qubits_);
    reject_trailing();
    ++line_no_;
  }

  unsigned need_qubit() {
    const std::size_t col =
        cursor_ < tokens_.size() ? tokens_[cursor_].column : end_column();
    const auto q = static_cast<unsigned>(
        need_uint("qubit index", std::numeric_limits<std::uint32_t>::max()));
    if (q >= num_qubits_)
      fail(col, "qubit " + std::to_string(q) + " out of range (circuit has " +
                    std::to_string(num_qubits_) + " qubits)");
    return q;
  }

  void parse_body_line() {
    const Token& head = tokens_[cursor_];
    if (head.text == "channel") return parse_channel();
    if (head.text == "noise") return parse_noise();
    if (head.text == "measure") return parse_measure();
    if (head.text == "unitary") return parse_unitary();
    const auto it = gate_table().find(head.text);
    if (it == gate_table().end())
      fail(head.column, "unknown directive or gate '" + head.text + "'");
    parse_gate(head, it->second);
  }

  void parse_gate(const Token& head, const GateKind& kind) {
    ++cursor_;  // consume the mnemonic
    // Arity mismatches are the common hand-editing error; report them as
    // such instead of as a generic "expected qubit index".
    const std::size_t args = tokens_.size() - cursor_;
    if (args != kind.arity + kind.nparams)
      fail(head.column,
           "gate '" + head.text + "' expects " + std::to_string(kind.arity) +
               " qubit(s) and " + std::to_string(kind.nparams) +
               " parameter(s), got " + std::to_string(args) + " token(s)");
    std::vector<unsigned> qubits;
    for (unsigned i = 0; i < kind.arity; ++i) qubits.push_back(need_qubit());
    std::vector<double> params;
    for (unsigned i = 0; i < kind.nparams; ++i)
      params.push_back(need_double("gate parameter"));
    // Build the matrix before the call: argument evaluation order is
    // unspecified, and std::move(params) must not drain the vector first.
    const Matrix matrix = kind.make(params);
    append_gate(head, head.text, matrix, std::move(qubits), std::move(params));
  }

  void parse_unitary() {
    const Token& head = tokens_[cursor_++];
    const Token& name = need("gate name");
    // Cap the arity *before* allocating: text is tenant-controlled at the
    // serve boundary, and an unchecked k would let a 70-byte line demand a
    // 2^k × 2^k zero-initialized matrix. 6 qubits (a 64×64 matrix, 4096
    // entries) is already far beyond what any backend sweeps as one gate.
    const auto k = static_cast<unsigned>(need_uint("unitary qubit count", 6));
    if (k == 0) fail(head.column, "unitary needs at least one qubit");
    std::vector<unsigned> qubits;
    for (unsigned i = 0; i < k; ++i) qubits.push_back(need_qubit());
    const auto nparams = static_cast<unsigned>(need_uint("parameter count", 64));
    std::vector<double> params;
    for (unsigned i = 0; i < nparams; ++i)
      params.push_back(need_double("gate parameter"));
    const std::size_t dim = std::size_t{1} << k;
    // Count the remaining tokens before touching memory: a short line must
    // fail as "expected matrix entry", not allocate first.
    if (tokens_.size() - cursor_ != dim * dim * 2)
      fail(head.column, "unitary on " + std::to_string(k) + " qubit(s) needs " +
                            std::to_string(dim * dim * 2) +
                            " matrix-entry tokens, got " +
                            std::to_string(tokens_.size() - cursor_));
    Matrix m(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c) {
        const double re = need_double("matrix entry");
        const double im = need_double("matrix entry");
        m(r, c) = cplx{re, im};
      }
    append_gate(head, name.text, m, std::move(qubits), std::move(params));
  }

  void append_gate(const Token& head, const std::string& name, const Matrix& m,
                   std::vector<unsigned> qubits, std::vector<double> params) {
    try {
      circuit_.gate(name, m, std::move(qubits), std::move(params));
    } catch (const std::exception& e) {
      // Circuit validation (duplicate targets etc.) — re-anchor to the line.
      fail(head.column, e.what());
    }
  }

  void parse_measure() {
    ++cursor_;
    circuit_.measure(need_qubit());
  }

  void parse_channel() {
    ++cursor_;
    const Token& id = need("channel id");
    if (channels_.count(id.text) != 0)
      fail(id.column, "duplicate channel id '" + id.text + "'");
    const Token& kind = need("channel kind");
    ChannelPtr channel;
    if (kind.text == "kraus") {
      channel = parse_raw_kraus(kind);
    } else {
      const auto it = channel_table().find(kind.text);
      if (it == channel_table().end())
        fail(kind.column, "unknown channel kind '" + kind.text + "'");
      std::vector<double> params;
      for (unsigned i = 0; i < it->second.nparams; ++i)
        params.push_back(need_double("channel parameter"));
      try {
        channel = it->second.make(params);
      } catch (const std::exception& e) {
        fail(kind.column, std::string("invalid channel parameters: ") + e.what());
      }
    }
    channels_.emplace(id.text, std::move(channel));
  }

  ChannelPtr parse_raw_kraus(const Token& kind) {
    const Token& name = need("channel name");
    const auto num_ops =
        static_cast<std::size_t>(need_uint("Kraus operator count", 4096));
    if (num_ops == 0) fail(kind.column, "channel needs at least one Kraus operator");
    const auto dim = static_cast<std::size_t>(need_uint("Kraus dimension", 64));
    if (dim != 2 && dim != 4)
      fail(tokens_[cursor_ - 1].column,
           "Kraus dimension must be 2 (1-qubit) or 4 (2-qubit), got " +
               std::to_string(dim));
    std::vector<Matrix> ops;
    ops.reserve(num_ops);
    for (std::size_t o = 0; o < num_ops; ++o) {
      Matrix m(dim, dim);
      for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c) {
          const double re = need_double("Kraus matrix entry");
          const double im = need_double("Kraus matrix entry");
          m(r, c) = cplx{re, im};
        }
      ops.push_back(std::move(m));
    }
    try {
      return std::make_shared<const KrausChannel>(name.text, std::move(ops));
    } catch (const std::exception& e) {
      fail(kind.column, std::string("invalid Kraus set: ") + e.what());
    }
  }

  void parse_noise() {
    ++cursor_;
    const Token& id = need("channel id");
    const auto it = channels_.find(id.text);
    if (it == channels_.end())
      fail(id.column, "unknown channel '" + id.text +
                          "' (declare it with a 'channel' line first)");
    const unsigned arity = it->second->arity();
    const std::size_t args = tokens_.size() - cursor_;
    if (args != arity)
      fail(id.column, "channel '" + id.text + "' (" + it->second->name() +
                          ") has arity " + std::to_string(arity) + " but " +
                          std::to_string(args) + " qubit(s) listed");
    NoiseSite site;
    site.after_op =
        circuit_.size() == 0 ? NoiseSite::kBeforeCircuit : circuit_.size() - 1;
    for (unsigned i = 0; i < arity; ++i) {
      const std::size_t col =
          cursor_ < tokens_.size() ? tokens_[cursor_].column : end_column();
      const unsigned q = need_qubit();
      // Aliased targets would corrupt backend kernels (apply_matrix2 with
      // q==q reads amplitudes it already overwrote) — reject like gates do.
      for (unsigned seen : site.qubits)
        if (seen == q)
          fail(col, "duplicate qubit " + std::to_string(q) + " in noise site");
      site.qubits.push_back(q);
    }
    site.channel = it->second;
    sites_.push_back(std::move(site));
  }

  std::string source_;
  std::vector<std::string_view> lines_;
  std::size_t line_no_ = 1;
  std::vector<Token> tokens_;
  std::size_t cursor_ = 0;

  unsigned num_qubits_ = 0;
  Circuit circuit_{0};
  std::vector<NoiseSite> sites_;
  std::map<std::string, ChannelPtr> channels_;
};

void write_matrix_entries(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      os << ' ' << fmt(m(r, c).real()) << ' ' << fmt(m(r, c).imag());
}

void write_site(std::ostream& os, const NoiseSite& site,
                const std::map<const KrausChannel*, std::string>& ids) {
  os << "noise " << ids.at(site.channel.get());
  for (unsigned q : site.qubits) os << ' ' << q;
  os << '\n';
}

}  // namespace

ParseError::ParseError(const std::string& source, std::size_t line,
                       std::size_t column, const std::string& message)
    : runtime_failure((source.empty() ? "" : source + ":") +
                      std::to_string(line) + ":" + std::to_string(column) +
                      ": " + message),
      line_(line),
      column_(column) {}

NoisyCircuit parse_circuit(std::string_view text,
                           const std::string& source_name) {
  return Parser(text, source_name).parse();
}

NoisyCircuit parse_circuit_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw runtime_failure("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) throw runtime_failure("error while reading '" + path + "'");
  return parse_circuit(buffer.str(), path);
}

void write_circuit(std::ostream& os, const NoisyCircuit& noisy) {
  const Circuit& circuit = noisy.circuit();
  os << "ptq 1\n";
  os << "qubits " << circuit.num_qubits() << '\n';

  // One declaration per distinct channel handle, named in order of first
  // appearance. Raw Kraus form: the factory parameters that built a channel
  // are not stored on it, but its matrices round-trip exactly.
  std::map<const KrausChannel*, std::string> ids;
  for (const NoiseSite& site : noisy.sites()) {
    const KrausChannel* ch = site.channel.get();
    if (ids.count(ch) != 0) continue;
    const std::string bad_channel_name =
        "channel name '" + ch->name() +
        "' contains whitespace/#/empty and cannot be written";
    PTSBE_REQUIRE(token_safe(ch->name()), bad_channel_name);
    // Mirror the parser's limits: emitting a declaration it would reject
    // (dim other than 2/4) must fail here, not when the file is read back.
    PTSBE_REQUIRE(ch->kraus(0).rows() == 2 || ch->kraus(0).rows() == 4,
                  "channel '" + ch->name() +
                      "' has a Kraus dimension .ptq cannot represent "
                      "(only 1- and 2-qubit channels)");
    std::string id = "c";
    id += std::to_string(ids.size());  // two steps: gcc-12 -Wrestrict FP on
                                       // char* + to_string temporaries
    ids.emplace(ch, id);
    os << "channel " << id << " kraus " << ch->name() << ' '
       << ch->num_branches() << ' ' << ch->kraus(0).rows();
    for (std::size_t k = 0; k < ch->num_branches(); ++k)
      write_matrix_entries(os, ch->kraus(k));
    os << '\n';
  }

  // Interleave ops with their trailing noise sites. The emitted site order
  // must reproduce sites() exactly — a program whose site list is not in
  // program order has no representation that preserves site indices.
  std::size_t next_site = 0;
  const auto emit_bucket = [&](const std::vector<std::size_t>& bucket) {
    for (std::size_t s : bucket) {
      PTSBE_REQUIRE(s == next_site,
                    "noise sites are not in program order; .ptq cannot "
                    "represent this program without renumbering sites");
      write_site(os, noisy.sites()[s], ids);
      ++next_site;
    }
  };
  emit_bucket(noisy.sites_after(NoiseSite::kBeforeCircuit));
  for (std::size_t i = 0; i < circuit.ops().size(); ++i) {
    const Operation& op = circuit.ops()[i];
    if (op.kind == OpKind::kMeasure) {
      os << "measure " << op.qubits.front() << '\n';
    } else {
      const std::string bad_gate_name =
          "gate name '" + op.name +
          "' contains whitespace/#/empty and cannot be written";
      PTSBE_REQUIRE(token_safe(op.name), bad_gate_name);
      // The parser caps `unitary` arity at 6; refuse at write time so the
      // round-trip contract (output always parses back) stays honest.
      PTSBE_REQUIRE(op.qubits.size() <= 6,
                    "gate '" + op.name +
                        "' acts on more than 6 qubits; .ptq cannot "
                        "represent it");
      const auto it = gate_table().find(op.name);
      const bool short_form = it != gate_table().end() &&
                              op.qubits.size() == it->second.arity &&
                              op.params.size() == it->second.nparams &&
                              exact_equal(op.matrix, it->second.make(op.params));
      if (short_form) {
        os << op.name;
        for (unsigned q : op.qubits) os << ' ' << q;
        for (double p : op.params) os << ' ' << fmt(p);
        os << '\n';
      } else {
        os << "unitary " << op.name << ' ' << op.qubits.size();
        for (unsigned q : op.qubits) os << ' ' << q;
        os << ' ' << op.params.size();
        for (double p : op.params) os << ' ' << fmt(p);
        write_matrix_entries(os, op.matrix);
        os << '\n';
      }
    }
    emit_bucket(noisy.sites_after(i));
  }
}

std::string write_circuit(const NoisyCircuit& noisy) {
  std::ostringstream os;
  write_circuit(os, noisy);
  return os.str();
}

bool circuits_equal(const Circuit& a, const Circuit& b) {
  if (a.num_qubits() != b.num_qubits() || a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Operation& x = a.ops()[i];
    const Operation& y = b.ops()[i];
    if (x.kind != y.kind || x.name != y.name || x.qubits != y.qubits)
      return false;
    if (x.params.size() != y.params.size()) return false;
    for (std::size_t j = 0; j < x.params.size(); ++j)
      if (x.params[j] != y.params[j]) return false;
    if (x.kind == OpKind::kGate && !exact_equal(x.matrix, y.matrix))
      return false;
  }
  return true;
}

bool programs_equal(const NoisyCircuit& a, const NoisyCircuit& b) {
  if (!circuits_equal(a.circuit(), b.circuit())) return false;
  if (a.num_sites() != b.num_sites()) return false;
  for (std::size_t i = 0; i < a.num_sites(); ++i) {
    const NoiseSite& x = a.sites()[i];
    const NoiseSite& y = b.sites()[i];
    if (x.after_op != y.after_op || x.qubits != y.qubits) return false;
    if (!channels_equal(*x.channel, *y.channel)) return false;
  }
  return true;
}

}  // namespace ptsbe::io
