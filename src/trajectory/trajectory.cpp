#include "ptsbe/trajectory/trajectory.hpp"

#include "ptsbe/common/error.hpp"

namespace ptsbe::traj {

namespace {

/// Select and apply one branch at `site` on `state`. Returns the branch
/// index. Implements Algorithm 1's if/else on unitary-mixture detection.
template <typename State>
std::size_t sample_and_apply_site(State& state, const NoiseSite& site,
                                  RngStream& rng, const Options& options,
                                  RunStats& stats) {
  const KrausChannel& ch = *site.channel;
  const double r = rng.uniform();
  if (options.unitary_mixture_fast_path && ch.is_unitary_mixture()) {
    // State-independent probabilities: index into the cumulative table and
    // apply the unitary directly (no renormalisation needed).
    const auto& probs = ch.nominal_probabilities();
    double acc = 0.0;
    std::size_t k = probs.size() - 1;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      acc += probs[i];
      if (r < acc) {
        k = i;
        break;
      }
    }
    state.apply_gate(ch.unitary(k), site.qubits);
    ++stats.gate_applications;
    return k;
  }
  // General path: realised probabilities at the current state. The CPTP
  // condition guarantees they sum to 1, so the cumulative walk terminates.
  double acc = 0.0;
  std::size_t k = ch.num_branches() - 1;
  for (std::size_t i = 0; i < ch.num_branches(); ++i) {
    const double p = state.branch_probability(ch.kraus(i), site.qubits);
    ++stats.expectation_evaluations;
    acc += p;
    if (r < acc) {
      k = i;
      break;
    }
  }
  state.apply_kraus_branch(ch.kraus(k), site.qubits);
  ++stats.gate_applications;
  return k;
}

template <typename State, typename MakeState>
Result run_impl(const NoisyCircuit& noisy, std::size_t num_trajectories,
                RngStream& rng, const Options& options,
                const MakeState& make_state) {
  PTSBE_REQUIRE(options.shots_per_trajectory >= 1,
                "shots_per_trajectory must be at least 1");
  Result result;
  result.records.reserve(num_trajectories * options.shots_per_trajectory);
  const std::vector<unsigned> measured = noisy.circuit().measured_qubits();
  const auto& ops = noisy.circuit().ops();

  for (std::size_t t = 0; t < num_trajectories; ++t) {
    State state = make_state();
    ++result.stats.state_preparations;

    for (std::size_t id : noisy.sites_after(NoiseSite::kBeforeCircuit))
      sample_and_apply_site(state, noisy.sites()[id], rng, options,
                            result.stats);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == OpKind::kGate) {
        state.apply_gate(ops[i].matrix, ops[i].qubits);
        ++result.stats.gate_applications;
      }
      for (std::size_t id : noisy.sites_after(i))
        sample_and_apply_site(state, noisy.sites()[id], rng, options,
                              result.stats);
    }

    const std::vector<std::uint64_t> shots =
        state.sample_shots(options.shots_per_trajectory, rng);
    for (std::uint64_t full : shots)
      result.records.push_back(
          measured.empty() ? full : extract_bits(full, measured));
  }
  return result;
}

}  // namespace

Result run_statevector(const NoisyCircuit& noisy, std::size_t num_trajectories,
                       RngStream& rng, const Options& options) {
  return run_impl<StateVector>(noisy, num_trajectories, rng, options, [&] {
    return StateVector(noisy.num_qubits());
  });
}

Result run_mps(const NoisyCircuit& noisy, std::size_t num_trajectories,
               RngStream& rng, const MpsConfig& mps_config,
               const Options& options) {
  return run_impl<MpsState>(noisy, num_trajectories, rng, options, [&] {
    return MpsState(noisy.num_qubits(), mps_config);
  });
}

}  // namespace ptsbe::traj
