#pragma once

/// \file trajectory.hpp
/// \brief Conventional noisy trajectory simulation (the paper's Algorithm 1).
///
/// This is the *baseline* PTSBE is measured against: each shot prepares a
/// fresh state, interleaves gate application with per-site stochastic branch
/// selection, and collects a single measurement at the end. Unitary-mixture
/// channels take the state-independent fast path (branch by nominal
/// probability, apply U_k); general channels compute the realised
/// probabilities ⟨ψ|K_i†K_i|ψ⟩ at the sampling point (Algorithm 1 line 9)
/// and apply K_k/√p_k. The fast path can be disabled to reproduce the
/// paper's §2.2 feature-(2) ablation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ptsbe/common/rng.hpp"
#include "ptsbe/noise/noise_model.hpp"
#include "ptsbe/statevector/statevector.hpp"
#include "ptsbe/tensornet/mps.hpp"

namespace ptsbe::traj {

/// Tuning/ablation switches for the baseline simulator.
struct Options {
  /// Use exact state-independent probabilities for unitary-mixture channels.
  bool unitary_mixture_fast_path = true;
  /// Shots sampled per prepared trajectory. The conventional workflow the
  /// paper describes uses 1 (single-shot data collection); larger values
  /// let benches isolate how much of PTSBE's win is shot batching alone.
  std::size_t shots_per_trajectory = 1;
};

/// Work counters for cost accounting in tests and benches.
struct RunStats {
  std::size_t state_preparations = 0;
  std::size_t gate_applications = 0;
  std::size_t expectation_evaluations = 0;  ///< general-Kraus probability computations
};

/// Result of a trajectory run: measurement records plus per-shot error
/// provenance is *not* available here — conventional trajectory simulation
/// discards it, which is limitation (2) the paper lists. (PTSBE in
/// ptsbe/core is the variant that keeps it.)
struct Result {
  /// One record per shot: bits of the measured qubits (program order), or
  /// all qubits when the circuit has no measure ops.
  std::vector<std::uint64_t> records;
  RunStats stats;
};

/// Run `num_trajectories` independent trajectories on the statevector
/// backend (Algorithm 1). Total shots = num_trajectories ×
/// options.shots_per_trajectory.
Result run_statevector(const NoisyCircuit& noisy, std::size_t num_trajectories,
                       RngStream& rng, const Options& options = {});

/// Same on the MPS tensor-network backend.
Result run_mps(const NoisyCircuit& noisy, std::size_t num_trajectories,
               RngStream& rng, const MpsConfig& mps_config,
               const Options& options = {});

}  // namespace ptsbe::traj
