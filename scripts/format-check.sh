#!/usr/bin/env bash
# format-check.sh — verify that the lines *changed* relative to a base ref
# conform to .clang-format. Deliberately changed-lines-only: the tree was
# never bulk-reformatted, and a whole-file check would demand churn that
# poisons blame and conflicts with stacked PRs.
#
# Usage: scripts/format-check.sh [base-ref]     (default: origin/main, then
#        falling back to HEAD~1 when the remote ref does not exist)
#
# Exits 0 when clean or when clang-format is not installed (prints a notice
# so local gcc-only boxes are not blocked); exits 1 with a diff when changed
# lines are misformatted.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

GIT_CLANG_FORMAT="$(command -v git-clang-format || true)"
CLANG_FORMAT="$(command -v clang-format || true)"
if [[ -z "${CLANG_FORMAT}" ]]; then
  for v in 18 17 16 15 14; do
    if command -v "clang-format-${v}" >/dev/null 2>&1; then
      CLANG_FORMAT="$(command -v clang-format-${v})"
      break
    fi
  done
fi
if [[ -z "${CLANG_FORMAT}" ]]; then
  echo "format-check: clang-format not installed; skipping (CI enforces it)"
  exit 0
fi

BASE="${1:-}"
if [[ -z "${BASE}" ]]; then
  if git rev-parse --verify --quiet origin/main >/dev/null; then
    BASE=origin/main
  else
    BASE=HEAD~1
  fi
fi

if [[ -n "${GIT_CLANG_FORMAT}" ]]; then
  # git-clang-format reformats only lines touched since BASE; --diff prints
  # what it would change without writing.
  OUT="$("${GIT_CLANG_FORMAT}" --binary "${CLANG_FORMAT}" --diff "${BASE}" -- \
         '*.cpp' '*.hpp' 2>/dev/null || true)"
  if [[ -n "${OUT}" && "${OUT}" != *"no modified files to format"* && \
        "${OUT}" != *"did not modify any files"* ]]; then
    echo "${OUT}"
    echo
    echo "format-check: changed lines deviate from .clang-format" >&2
    echo "fix with: git-clang-format ${BASE}" >&2
    exit 1
  fi
  echo "format-check: changed lines are clean (base ${BASE})"
  exit 0
fi

echo "format-check: git-clang-format not installed; skipping (CI enforces it)"
exit 0
