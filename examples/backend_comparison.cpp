// Backend comparison on one workload: exact density matrix (ground truth),
// Clifford Pauli-frame bulk sampler (the Stim-like baseline — fast but
// restricted), conventional trajectories (Algorithm 1), and PTSBE on both
// the statevector and MPS backends.
//
// The workload is chosen inside the Clifford+Pauli fragment so *all five*
// methods can run it; the printout shows (i) everyone agrees on the
// distribution and (ii) where each method's cost goes. Swap one T gate in
// and the Clifford sampler drops out — exactly the gap PTSBE targets.

#include <cstdio>
#include <map>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"
#include "ptsbe/trajectory/trajectory.hpp"

namespace {

double tvd(const std::map<std::uint64_t, double>& f,
           const std::vector<double>& exact) {
  double d = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto it = f.find(i);
    d += std::abs((it == f.end() ? 0.0 : it->second) - exact[i]);
  }
  return d / 2;
}

template <typename Records>
std::map<std::uint64_t, double> freq(const Records& records) {
  std::map<std::uint64_t, double> f;
  for (auto r : records) f[r] += 1.0 / records.size();
  return f;
}

}  // namespace

int main() {
  using namespace ptsbe;
  const unsigned n = 6;
  const std::size_t total = 200000;

  Circuit circuit(n);
  circuit.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) circuit.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q) circuit.s(q);
  circuit.cz(0, n - 1);
  circuit.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.01));
  const NoisyCircuit noisy = noise.apply(circuit);

  // Ground truth.
  DensityMatrix dm(n);
  dm.apply_noisy_circuit(noisy);
  const auto exact = dm.probabilities();
  std::printf("%u-qubit Clifford workload, %zu noise sites, %zu shots each\n\n",
              n, noisy.num_sites(), total);
  std::printf("%-26s %10s %8s\n", "method", "seconds", "TVD");

  {  // Stim-like Pauli-frame bulk sampler.
    WallTimer t;
    PauliFrameSampler sampler(noisy, RngStream(1));
    RngStream rng(2);
    const auto records = sampler.sample(total, rng);
    std::printf("%-26s %10.3f %8.4f\n", "pauli-frame (Clifford)", t.seconds(),
                tvd(freq(records), exact));
  }
  {  // Conventional trajectories, one shot per state preparation.
    WallTimer t;
    RngStream rng(3);
    const auto result = traj::run_statevector(noisy, total / 40, rng);
    std::printf("%-26s %10.3f %8.4f  (only %zu shots: 1 per prep)\n",
                "algorithm-1 baseline", t.seconds(),
                tvd(freq(result.records), exact), result.records.size());
  }
  // PTSBE rows: the same pipeline with the backend swapped by name — the
  // whole point of the facade. Same seed → same PTS specs for both.
  pts::StrategyConfig cfg;
  cfg.nsamples = total / 40;
  cfg.nshots = 40;
  Pipeline pipeline(noisy);
  pipeline.strategy("probabilistic", cfg).seed(4);
  {  // PTSBE, statevector backend.
    WallTimer t;
    const RunResult run = pipeline.backend("statevector").run();
    std::map<std::uint64_t, double> f;
    for (const auto& b : run.result.batches)
      for (auto r : b.records) f[r] += 1.0 / run.result.total_shots();
    std::printf("%-26s %10.3f %8.4f  (%zu preps for %llu shots)\n",
                "PTSBE statevector", t.seconds(), tvd(f, exact),
                run.result.batches.size(),
                static_cast<unsigned long long>(run.result.total_shots()));
  }
  {  // PTSBE, MPS tensor-network backend.
    WallTimer t;
    const RunResult run = pipeline.backend("mps").run();
    std::map<std::uint64_t, double> f;
    for (const auto& b : run.result.batches)
      for (auto r : b.records) f[r] += 1.0 / run.result.total_shots();
    std::printf("%-26s %10.3f %8.4f\n", "PTSBE tensor network", t.seconds(),
                tvd(f, exact));
  }

  std::printf(
      "\nAdd a single T gate and the Pauli-frame row disappears — universal\n"
      "noisy sampling at scale is the regime PTSBE exists for.\n");
  return 0;
}
