// ptsbe_serve — the service loop end to end: a newline-delimited job file
// stands in for a fleet of tenants. Every line is one job (key=value
// tokens), every circuit is a `.ptq` file, and the whole stream is pushed
// through one shared serve::Engine — submissions are asynchronous, repeat
// circuits hit the ExecPlan cache, and a full admission queue rejects with
// status instead of buffering.
//
//   ptsbe_serve examples/jobs/demo.jobs
//   ptsbe_serve --workers 4 --queue 32 --repeat 16 demo.jobs
//
// Job-file grammar: blank lines and '#' comments are skipped; otherwise
//   circuit=PATH [strategy=NAME] [backend=NAME] [schedule=NAME]
//   [threads=N] [seed=S] [nsamples=N] [nshots=N] [p_min=P] [p_max=P]
//   [cutoff=P] [fuse=0|1]
// circuit paths are resolved relative to the job file's directory.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ptsbe/serve/engine.hpp"

namespace {

// SIGINT/SIGTERM request a graceful drain: the handler only flips this
// flag; the submission loop then shuts the engine down (in-flight jobs
// finish, further submissions are kRejected with RejectReason::kShutdown)
// and the process exits 0.
volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

void usage(std::FILE* os, const char* argv0) {
  std::fprintf(os,
      "usage: %s [options] <jobfile>\n"
      "  --workers N   concurrent job slots (0 = hardware concurrency) [2]\n"
      "  --queue N     admission queue bound (beyond it: reject) [64]\n"
      "  --cache N     ExecPlan LRU capacity (0 = disable) [32]\n"
      "  --repeat K    submit the job list K times (cache demo) [1]\n"
      "  --selftest-signal MS  raise SIGTERM after MS milliseconds\n"
      "                        (graceful-drain smoke test)\n",
      argv0);
}

[[noreturn]] void reject(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  usage(stderr, argv0);
  std::exit(2);
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// One job-file line -> JobRequest. Throws std::runtime_error with a
/// line-anchored message on malformed input.
ptsbe::serve::JobRequest parse_job_line(const std::string& line,
                                        const std::string& base_dir,
                                        std::size_t line_no) {
  ptsbe::serve::JobRequest req;
  std::string circuit_path;
  std::istringstream tokens(line);
  std::string token;
  const auto bad = [line_no](const std::string& why) -> std::runtime_error {
    return std::runtime_error("job file line " + std::to_string(line_no) +
                              ": " + why);
  };
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw bad("expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "circuit") circuit_path = base_dir + value;
    else if (key == "strategy") req.strategy = value;
    else if (key == "backend") req.backend = value;
    else if (key == "schedule") req.schedule = ptsbe::be::schedule_from_string(value);
    else if (key == "threads") req.threads = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "seed") req.seed = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "nsamples") req.strategy_config.nsamples = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "nshots") req.strategy_config.nshots = std::strtoull(value.c_str(), nullptr, 10);
    else if (key == "p_min") req.strategy_config.p_min = std::strtod(value.c_str(), nullptr);
    else if (key == "p_max") req.strategy_config.p_max = std::strtod(value.c_str(), nullptr);
    else if (key == "cutoff") req.strategy_config.probability_cutoff = std::strtod(value.c_str(), nullptr);
    else if (key == "fuse") {
      if (value != "0" && value != "1")
        throw bad("fuse must be 0 or 1, got '" + value + "'");
      req.backend_config.fuse_gates = value == "1";
    }
    else throw bad("unknown key '" + key + "'");
  }
  if (circuit_path.empty()) throw bad("missing circuit=PATH");
  req.circuit_text = read_file(circuit_path);
  req.source_name = circuit_path;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptsbe;

  serve::EngineConfig config;
  config.workers = 2;
  std::size_t repeat = 1;
  long selftest_signal_ms = -1;
  std::string job_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) reject(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--workers") {
      config.workers = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--queue") {
      config.queue_capacity = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--cache") {
      config.plan_cache_capacity = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--repeat") {
      repeat = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--selftest-signal") {
      selftest_signal_ms = std::strtol(value(), nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      reject(argv[0], "unknown option '" + arg + "'");
    } else if (job_path.empty()) {
      job_path = arg;
    } else {
      reject(argv[0], "more than one job file given");
    }
  }
  if (job_path.empty()) reject(argv[0], "no job file given");

  // Parse the whole job stream up front: a malformed job file is a usage
  // error (exit 2) before any engine work starts.
  std::vector<serve::JobRequest> requests;
  try {
    std::ifstream is(job_path);
    if (!is)
      throw std::runtime_error("cannot open '" + job_path + "' for reading");
    const std::string base_dir = dirname_of(job_path);
    std::string line;
    for (std::size_t line_no = 1; std::getline(is, line); ++line_no) {
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      requests.push_back(parse_job_line(line, base_dir, line_no));
    }
  } catch (const std::exception& e) {
    reject(argv[0], e.what());
  }
  if (requests.empty()) reject(argv[0], "job file has no jobs");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  serve::Engine engine(config);
  std::printf("engine: workers=%zu queue=%zu plan-cache=%zu jobs=%zu x%zu\n",
              engine.num_workers(), config.queue_capacity,
              config.plan_cache_capacity, requests.size(), repeat);

  // Drain-path smoke: raise SIGTERM from a thread after a delay so a ctest
  // run exercises the real handler + drain sequence.
  std::thread selftest;
  if (selftest_signal_ms >= 0) {
    selftest = std::thread([selftest_signal_ms] {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(selftest_signal_ms));
      (void)std::raise(SIGTERM);
    });
  }

  // Submit everything asynchronously, then wait in submission order. A
  // kRejected handle is the engine's backpressure signal — a well-behaved
  // client reacts by draining its oldest outstanding job and resubmitting,
  // so a stream larger than the admission queue still completes.
  std::vector<serve::JobHandle> jobs;
  jobs.reserve(requests.size() * repeat);
  std::size_t drain_cursor = 0;
  std::size_t backpressure_retries = 0;
  bool drained = false;
  const auto submit_throttled = [&](const serve::JobRequest& req) {
    // A signal turns the remaining submissions into shutdown rejections:
    // the engine stops admitting (distinct status kShutdown) while every
    // already-admitted job runs to completion.
    if (g_shutdown != 0 && !drained) {
      drained = true;
      std::printf("signal received: draining in-flight jobs, rejecting new "
                  "admissions\n");
      engine.shutdown();
    }
    while (true) {
      serve::JobHandle handle = engine.submit(req);
      if (handle.status() != serve::JobStatus::kRejected ||
          handle.reject_reason() == serve::RejectReason::kShutdown ||
          drain_cursor >= jobs.size())
        return handle;
      ++backpressure_retries;
      try {
        (void)jobs[drain_cursor].wait();
      } catch (const std::exception&) {
        // Failed jobs are reported in the wait loop below; here we only
        // need the slot back.
      }
      ++drain_cursor;
    }
  };
  for (std::size_t r = 0; r < repeat; ++r)
    for (const serve::JobRequest& req : requests)
      jobs.push_back(submit_throttled(req));

  int failures = 0;
  std::size_t shutdown_rejected = 0;
  for (serve::JobHandle& job : jobs) {
    if (job.status() == serve::JobStatus::kRejected &&
        job.reject_reason() == serve::RejectReason::kShutdown) {
      ++shutdown_rejected;  // shed by the drain, not a failure
      continue;
    }
    try {
      const RunResult& run = job.wait();
      std::printf(
          "job %llu: done  strategy=%s backend=%s specs=%zu shots=%llu "
          "plan-cache=%s\n",
          static_cast<unsigned long long>(job.id()), run.strategy.c_str(),
          run.backend.c_str(), run.num_specs,
          static_cast<unsigned long long>(run.result.total_shots()),
          job.plan_cache_hit() ? "hit" : "miss");
    } catch (const std::exception& e) {
      ++failures;
      std::printf("job %llu: %s (%s)\n",
                  static_cast<unsigned long long>(job.id()),
                  serve::to_string(job.status()).c_str(), e.what());
    }
  }

  const serve::EngineStats stats = engine.stats();
  if (backpressure_retries != 0)
    std::printf("backpressure: %zu submissions retried after rejection\n",
                backpressure_retries);
  std::printf(
      "stats: submitted=%llu served=%llu failed=%llu cancelled=%llu "
      "rejected=%llu cache-hit-rate=%.2f queue-depth=%zu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.served),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.rejected),
      stats.plan_cache_hit_rate(), stats.queue_depth);
  if (selftest.joinable()) selftest.join();
  if (drained) {
    std::printf("drained: %zu admissions rejected with shutdown status, "
                "exiting cleanly\n", shutdown_rejected);
  }
  return failures == 0 ? 0 : 1;
}
