// Circuit-level QEC memory experiment on the Steane code: encode |0_L⟩,
// run syndrome-extraction rounds under depolarizing circuit noise, read out
// the data transversally, and decode.
//
// Because the whole circuit is Clifford, this is the one workload where the
// Stim-like Pauli-frame bulk sampler and PTSBE overlap — so the example
// runs both and compares logical error rates and throughput. Swap the
// encoded state for |T_L⟩ (one line) and only PTSBE survives: that is the
// universality gap the paper targets.

#include <cstdio>

#include "ptsbe/common/timer.hpp"
#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/estimator.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/memory.hpp"
#include "ptsbe/stabilizer/pauli_frame.hpp"

int main() {
  using namespace ptsbe;
  const qec::CssCode code = qec::steane();
  const unsigned rounds = 1;
  const qec::MemoryExperiment exp = qec::make_memory_experiment(code, rounds);
  const qec::CssLookupDecoder decoder(code, 1);
  std::printf("Steane memory: %u rounds, %u qubits, depth %zu\n\n", rounds,
              exp.circuit.num_qubits(), exp.circuit.depth());

  std::printf("%8s %22s %14s %22s %14s\n", "p", "frame logical-err",
              "frame shots/s", "PTSBE logical-err", "PTSBE shots/s");
  for (const double p : {0.001, 0.003, 0.01, 0.03}) {
    NoiseModel nm;
    nm.add_all_gate_noise(channels::depolarizing(p));
    const NoisyCircuit noisy = nm.apply(exp.circuit);

    // Stim-like Pauli-frame bulk sampling.
    WallTimer t;
    PauliFrameSampler sampler(noisy, RngStream(1));
    RngStream rng_f(2);
    const auto frame_records = sampler.sample(200000, rng_f);
    const double frame_secs = t.seconds();
    const double frame_rate =
        qec::memory_logical_error_rate(exp, decoder, frame_records);

    // PTSBE on the statevector backend.
    t.reset();
    RngStream rng_p(3);
    pts::Options opt;
    opt.nsamples = 500;
    opt.nshots = 200;
    opt.merge_duplicates = true;
    const auto specs = pts::sample_probabilistic(noisy, opt, rng_p);
    const auto result = be::execute(noisy, specs);
    const double pts_secs = t.seconds();
    const auto pts_rate = be::estimate_probability(
        result, be::Weighting::kDrawWeighted, [&](std::uint64_t r) {
          return qec::decode_memory_shot(exp, decoder, r) != 0;
        });

    std::printf("%8.3f %14.4f ± %5.4f %14.0f %14.4f ± %5.4f %14.0f\n", p,
                frame_rate,
                std::sqrt(frame_rate * (1 - frame_rate) / 200000.0),
                200000.0 / frame_secs, pts_rate.value, pts_rate.std_error,
                static_cast<double>(result.total_shots()) / pts_secs);
  }

  std::printf(
      "\nThe two columns agree closely (PTSBE error bars mildly understate\n"
      "shared-trajectory correlation; see estimator.hpp). The frame sampler\n"
      "is faster — and limited to Clifford+Pauli circuits; inject a magic\n"
      "state or a non-Pauli channel and PTSBE is the only batched option.\n");
  return 0;
}
