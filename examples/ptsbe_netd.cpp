// ptsbe_netd — the wire-protocol serve daemon: one net::Server (engine +
// listener) driven by a config file, with graceful SIGINT/SIGTERM drain.
//
//   ptsbe_netd --config netd.conf
//   ptsbe_netd --port 7411 --workers 4 --quota 8
//
// Config-file grammar (one directive per line; '#' comments and blank
// lines are skipped; later directives and command-line flags win):
//
//   listen HOST            bind address            [127.0.0.1]
//   port N                 TCP port (0 = ephemeral) [0]
//   workers N              engine job slots         [2]
//   queue N                admission queue bound    [64]
//   plan-cache N           ExecPlan LRU capacity    [32]
//   quota N                default per-tenant outstanding-job quota
//                          (0 = unlimited)          [0]
//   tenant-quota NAME N    per-tenant override of `quota`
//   max-payload BYTES      per-frame payload bound  [8 MiB]
//
// On SIGINT/SIGTERM the daemon drains: new connections are refused,
// SUBMITs on open connections get `ERROR shutting-down`, every admitted
// job finishes streaming its result, the final stats JSON is printed, and
// the process exits 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "ptsbe/net/server.hpp"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void on_signal(int) { g_shutdown = 1; }

void usage(std::FILE* os, const char* argv0) {
  std::fprintf(os,
      "usage: %s [options]\n"
      "  --config PATH          read directives from a config file\n"
      "  --listen HOST          bind address [127.0.0.1]\n"
      "  --port N               TCP port (0 = ephemeral) [0]\n"
      "  --workers N            engine job slots [2]\n"
      "  --queue N              admission queue bound [64]\n"
      "  --cache N              ExecPlan LRU capacity [32]\n"
      "  --quota N              default per-tenant quota (0 = unlimited)\n"
      "  --max-payload BYTES    per-frame payload bound [8388608]\n"
      "  --print-port           print 'port NNNN' once listening\n"
      "  --selftest-signal MS   raise SIGTERM after MS milliseconds\n"
      "                         (drain-path smoke test)\n",
      argv0);
}

[[noreturn]] void reject(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  usage(stderr, argv0);
  std::exit(2);
}

std::size_t parse_size(const std::string& what, const std::string& value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size() || value.empty()) {
    throw std::runtime_error("bad " + what + " '" + value + "'");
  }
  return static_cast<std::size_t>(parsed);
}

/// Apply one config-file directive. Throws std::runtime_error on nonsense.
void apply_directive(ptsbe::net::ServerConfig& config, const std::string& line,
                     std::size_t line_no) {
  std::istringstream tokens(line);
  std::string key;
  tokens >> key;
  const auto bad = [line_no](const std::string& why) -> std::runtime_error {
    return std::runtime_error("config line " + std::to_string(line_no) +
                              ": " + why);
  };
  const auto value = [&]() -> std::string {
    std::string v;
    if (!(tokens >> v)) throw bad("'" + key + "' needs a value");
    return v;
  };
  if (key == "listen") {
    config.listen_host = value();
  } else if (key == "port") {
    config.port = static_cast<std::uint16_t>(parse_size("port", value()));
  } else if (key == "workers") {
    config.engine.workers = parse_size("workers", value());
  } else if (key == "queue") {
    config.engine.queue_capacity = parse_size("queue", value());
  } else if (key == "plan-cache") {
    config.engine.plan_cache_capacity = parse_size("plan-cache", value());
  } else if (key == "quota") {
    config.engine.tenant_quota = parse_size("quota", value());
  } else if (key == "tenant-quota") {
    const std::string tenant = value();
    config.engine.tenant_quota_overrides[tenant] =
        parse_size("tenant-quota", value());
  } else if (key == "max-payload") {
    config.max_payload = parse_size("max-payload", value());
  } else {
    throw bad("unknown directive '" + key + "'");
  }
  std::string extra;
  if (tokens >> extra) throw bad("trailing token '" + extra + "'");
}

void load_config_file(ptsbe::net::ServerConfig& config,
                      const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open config '" + path + "' for reading");
  }
  std::string line;
  for (std::size_t line_no = 1; std::getline(is, line); ++line_no) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    apply_directive(config, line, line_no);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptsbe;

  net::ServerConfig config;
  config.engine.workers = 2;
  bool print_port = false;
  long selftest_signal_ms = -1;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) reject(argv[0], arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage(stdout, argv[0]);
        return 0;
      } else if (arg == "--config") {
        load_config_file(config, value());
      } else if (arg == "--listen") {
        config.listen_host = value();
      } else if (arg == "--port") {
        config.port = static_cast<std::uint16_t>(parse_size("port", value()));
      } else if (arg == "--workers") {
        config.engine.workers = parse_size("workers", value());
      } else if (arg == "--queue") {
        config.engine.queue_capacity = parse_size("queue", value());
      } else if (arg == "--cache") {
        config.engine.plan_cache_capacity = parse_size("cache", value());
      } else if (arg == "--quota") {
        config.engine.tenant_quota = parse_size("quota", value());
      } else if (arg == "--max-payload") {
        config.max_payload = parse_size("max-payload", value());
      } else if (arg == "--print-port") {
        print_port = true;
      } else if (arg == "--selftest-signal") {
        selftest_signal_ms =
            static_cast<long>(parse_size("selftest-signal", value()));
      } else {
        reject(argv[0], "unknown option '" + arg + "'");
      }
    }
  } catch (const std::exception& e) {
    reject(argv[0], e.what());
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    net::Server server(config);
    std::printf("ptsbe_netd: listening on %s (workers=%zu queue=%zu "
                "plan-cache=%zu quota=%zu)\n",
                server.endpoint().c_str(), config.engine.workers,
                config.engine.queue_capacity,
                config.engine.plan_cache_capacity,
                config.engine.tenant_quota);
    if (print_port) {
      std::printf("port %u\n", static_cast<unsigned>(server.port()));
      std::fflush(stdout);
    }

    // Drain-path smoke: raise SIGTERM from a thread after a delay, so the
    // ctest exercise goes through the *real* handler + drain sequence.
    std::thread selftest;
    if (selftest_signal_ms >= 0) {
      selftest = std::thread([selftest_signal_ms] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(selftest_signal_ms));
        (void)std::raise(SIGTERM);
      });
    }

    // The signal handler only flips a flag (async-signal-safe); the drain
    // itself runs here on the main thread.
    while (g_shutdown == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("ptsbe_netd: signal received, draining\n");
    server.begin_drain();
    server.stop();
    if (selftest.joinable()) selftest.join();

    std::printf("ptsbe_netd: drained, final stats:\n%s\n",
                serve::stats_to_json(server.stats()).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ptsbe_netd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
