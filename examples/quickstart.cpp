// Quickstart: the PTSBE pipeline end to end on a small noisy circuit.
//
//   1. Build a coherent circuit and bind a noise model  → NoisyCircuit
//   2+3. One Pipeline call: PTS (Algorithm 2) → Batched Execution,
//        with the strategy and backend selected by registry name
//
// Compare against the conventional per-shot trajectory baseline and the
// exact density matrix to see that all three agree — and that PTSBE knows
// *which* errors produced each shot, which the baseline cannot tell you.

#include <cstdio>
#include <map>

#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/densmat/density_matrix.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/trajectory/trajectory.hpp"

int main() {
  using namespace ptsbe;

  // --- 1. A noisy GHZ circuit -------------------------------------------
  const unsigned n = 4;
  Circuit circuit(n);
  circuit.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) circuit.cx(q, q + 1);
  circuit.measure_all();

  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.02));
  noise.add_measurement_noise(channels::bit_flip(0.01));

  // --- 2+3. PTS → BE through the Pipeline facade -------------------------
  Pipeline pipeline(circuit, noise);
  const NoisyCircuit& noisy = pipeline.program();
  std::printf("program: %u qubits, %zu gates, %zu noise sites\n", n,
              circuit.gate_count(), noisy.num_sites());

  pts::StrategyConfig cfg;
  cfg.nsamples = 2000;  // candidate draws (Algorithm 2)
  cfg.nshots = 1000;    // batched shots per surviving trajectory
  const RunResult run = pipeline.strategy("probabilistic", cfg)
                            .backend("statevector")
                            .seed(42)
                            .run();
  const be::Result& result = run.result;
  std::printf("PTS (%s): %zu unique trajectory specs\n", run.strategy.c_str(),
              run.num_specs);
  std::printf("BE (%s): %llu shots (%.1f%% unique), prep %.3fs sample %.3fs\n",
              run.backend.c_str(),
              static_cast<unsigned long long>(result.total_shots()),
              100.0 * result.unique_shot_fraction(), result.prepare_seconds,
              result.sample_seconds);

  // The strategy declared its estimator weighting, so estimates cannot be
  // mispaired with the sampling scheme.
  const be::Estimate parity = run.estimate_z_parity((1ULL << n) - 1);
  std::printf("<Z...Z> = %.4f +/- %.4f\n", parity.value, parity.std_error);

  // Error provenance: every batch knows exactly which Kraus branches fired.
  std::printf("\nfirst three trajectory batches and their error labels:\n");
  for (std::size_t i = 0; i < result.batches.size() && i < 3; ++i) {
    const auto& batch = result.batches[i];
    std::printf("  batch %zu: p=%.3e, %zu shots\n", i,
                batch.spec.nominal_probability, batch.records.size());
    for (const std::string& label : describe_errors(noisy, batch.spec))
      std::printf("    %s\n", label.c_str());
    if (batch.spec.branches.empty()) std::printf("    (error-free)\n");
  }

  // --- Validation: baseline trajectories and the exact density matrix ----
  RngStream rng2(43);
  const auto baseline = traj::run_statevector(noisy, 20000, rng2);
  DensityMatrix dm(n);
  dm.apply_noisy_circuit(noisy);
  const auto exact = dm.probabilities();

  std::map<std::uint64_t, double> f_be, f_tr;
  double be_total = 0;
  for (const auto& b : result.batches)
    for (auto r : b.records) {
      f_be[r] += 1.0;
      be_total += 1.0;
    }
  for (auto r : baseline.records) f_tr[r] += 1.0 / baseline.records.size();

  std::printf("\noutcome     exact     PTSBE  baseline\n");
  for (std::uint64_t idx : {0ULL, (1ULL << n) - 1, 1ULL}) {
    std::printf("  %04llx   %.4f    %.4f    %.4f\n",
                static_cast<unsigned long long>(idx), exact[idx],
                f_be[idx] / be_total, f_tr[idx]);
  }
  std::printf("\nbaseline needed %zu state preparations for %zu shots;\n",
              baseline.stats.state_preparations, baseline.records.size());
  std::printf("PTSBE needed %zu for %llu shots.\n", result.batches.size(),
              static_cast<unsigned long long>(result.total_shots()));
  return 0;
}
