// net_client_demo — the ptsbe::net wire protocol end to end from the
// client side: submit a `.ptq` circuit to a daemon, stream the BATCH
// frames back, reconstruct the RunResult, and cross-check it against a
// local Pipeline::run with the same seed (byte-for-byte identical
// records — the protocol's core contract).
//
//   ptsbe_netd --port 7411 &            # somewhere
//   net_client_demo --port 7411 examples/circuits/bell.ptq
//
//   net_client_demo --self-serve examples/circuits/bell.ptq
//       hermetic mode: spins up an in-process net::Server on an ephemeral
//       loopback port and talks to itself — the ctest smoke path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/net/client.hpp"
#include "ptsbe/net/server.hpp"

namespace {

void usage(std::FILE* os, const char* argv0) {
  std::fprintf(os,
      "usage: %s [options] <circuit.ptq>\n"
      "  --host HOST              daemon address [127.0.0.1]\n"
      "  --port N                 daemon port\n"
      "  --self-serve             run an in-process server instead\n"
      "  --tenant NAME            tenant label [demo]\n"
      "  --priority normal|high   admission lane [normal]\n"
      "  --strategy NAME          PTS strategy [probabilistic]\n"
      "  --backend NAME           simulator backend [statevector]\n"
      "  --seed S                 master seed [1234]\n"
      "  --nsamples N             candidate draws [64]\n"
      "  --nshots N               shots per spec [256]\n"
      "  --connect-timeout-ms MS  dead-endpoint bound [5000]\n"
      "  --stats                  also fetch the server's stats JSON\n",
      argv0);
}

[[noreturn]] void reject(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  usage(stderr, argv0);
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptsbe;

  net::ClientConfig client_config;
  serve::JobRequest job;
  job.tenant = "demo";
  job.seed = 1234;
  job.strategy_config.nsamples = 64;
  job.strategy_config.nshots = 256;
  bool self_serve = false;
  bool want_stats = false;
  bool port_given = false;
  std::string circuit_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) reject(argv[0], arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--host") {
      client_config.host = value();
    } else if (arg == "--port") {
      client_config.port =
          static_cast<std::uint16_t>(std::strtoul(value(), nullptr, 10));
      port_given = true;
    } else if (arg == "--self-serve") {
      self_serve = true;
    } else if (arg == "--tenant") {
      job.tenant = value();
    } else if (arg == "--priority") {
      try {
        job.priority = serve::priority_from_string(value());
      } catch (const std::exception& e) {
        reject(argv[0], e.what());
      }
    } else if (arg == "--strategy") {
      job.strategy = value();
    } else if (arg == "--backend") {
      job.backend = value();
    } else if (arg == "--seed") {
      job.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--nsamples") {
      job.strategy_config.nsamples = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--nshots") {
      job.strategy_config.nshots = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--connect-timeout-ms") {
      client_config.connect_timeout_ms =
          static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (!arg.empty() && arg[0] == '-') {
      reject(argv[0], "unknown option '" + arg + "'");
    } else if (circuit_path.empty()) {
      circuit_path = arg;
    } else {
      reject(argv[0], "more than one circuit given");
    }
  }
  if (circuit_path.empty()) reject(argv[0], "no circuit given");
  if (!self_serve && !port_given) {
    reject(argv[0], "need --port (or --self-serve)");
  }

  try {
    job.circuit_text = read_file(circuit_path);
    job.source_name = circuit_path;

    // Hermetic mode: serve ourselves on an ephemeral loopback port.
    std::unique_ptr<net::Server> server;
    if (self_serve) {
      net::ServerConfig server_config;
      server_config.engine.workers = 2;
      server = std::make_unique<net::Server>(server_config);
      client_config.host = "127.0.0.1";
      client_config.port = server->port();
      std::printf("self-serve: %s\n", server->endpoint().c_str());
    }

    net::Client client(client_config);
    const net::RemoteRun remote = client.submit(job);
    std::printf(
        "job %llu: strategy=%s backend=%s weighting=%s specs=%zu "
        "shots=%llu plan-cache=%s\n",
        static_cast<unsigned long long>(remote.job_id),
        remote.run.strategy.c_str(), remote.run.backend.c_str(),
        net::weighting_to_string(remote.run.weighting).c_str(),
        remote.run.num_specs,
        static_cast<unsigned long long>(remote.run.result.total_shots()),
        remote.plan_cache_hit ? "hit" : "miss");

    // The protocol contract, checked live: the served records equal a
    // local run with the same config, bit for bit.
    const RunResult local =
        Pipeline(io::parse_circuit(job.circuit_text, job.source_name))
            .strategy(job.strategy, job.strategy_config)
            .backend(job.backend, job.backend_config)
            .schedule(job.schedule)
            .threads(job.threads)
            .seed(job.seed)
            .run();
    bool identical = local.result.batches.size() ==
                     remote.run.result.batches.size();
    for (std::size_t i = 0; identical && i < local.result.batches.size();
         ++i) {
      identical = local.result.batches[i].records ==
                  remote.run.result.batches[i].records;
    }
    std::printf("byte-identity vs local run: %s\n",
                identical ? "identical" : "MISMATCH");

    if (want_stats) {
      std::printf("server stats: %s\n", client.stats_json().c_str());
    }
    if (server) server->stop();
    return identical ? 0 : 1;
  } catch (const net::RemoteError& e) {
    std::fprintf(stderr, "remote error [%s]", e.code().c_str());
    if (e.line() != 0) {
      std::fprintf(stderr, " at %zu:%zu", e.line(), e.column());
    }
    std::fprintf(stderr, ": %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
