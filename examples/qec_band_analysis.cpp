// Targeted error analysis with PTS sampling strategies — the paper's first
// bullet: "tailored error injection for specific QEC analysis scenarios".
//
// Workload: a Steane-encoded magic state, read out transversally and decoded
// with the lookup decoder. Three PTS strategies probe it:
//   (a) exhaustive enumeration of the most likely error combinations,
//   (b) probability-band sampling (rare-event regions on demand),
//   (c) spatially-correlated injection (clustered errors).
// For each strategy we report the logical error rate of the decoder — the
// quantity a decoder designer actually wants, resolved by error class.

#include <cstdio>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/codes.hpp"
#include "ptsbe/qec/decoder.hpp"
#include "ptsbe/qec/distillation.hpp"
#include "ptsbe/qec/stabilizer_code.hpp"

int main() {
  using namespace ptsbe;
  const qec::CssCode code = qec::steane();

  // Encoded |0_L⟩, transversal readout, physical depolarizing noise after
  // every gate of the encoding circuit: any decoded logical-1 is a genuine
  // logical error.
  Circuit circuit(code.n);
  circuit.append(qec::synthesize_encoder(code));
  circuit.measure_all();
  NoiseModel noise;
  noise.add_all_gate_noise(channels::depolarizing(0.004));
  const NoisyCircuit noisy = noise.apply(circuit);
  const qec::CssLookupDecoder decoder(code, 1);
  std::printf("workload: Steane |0_L> readout, %zu noise sites\n\n",
              noisy.num_sites());

  const auto logical_error_rate = [&](const std::vector<TrajectorySpec>& specs,
                                      const char* label) {
    if (specs.empty()) {
      std::printf("%-28s (no trajectories)\n", label);
      return;
    }
    const be::Result result = be::execute(noisy, specs);
    double weighted_fail = 0.0, weight = 0.0;
    for (const auto& batch : result.batches) {
      double fails = 0.0;
      for (auto record : batch.records)
        fails += decoder.logical_z_value(record) != 0 ? 1.0 : 0.0;
      // Weight each trajectory by its probability so rates are physical.
      const double w = batch.spec.nominal_probability;
      weighted_fail += w * fails / static_cast<double>(batch.records.size());
      weight += w;
    }
    std::printf("%-28s %4zu trajs, covered prob %.3e, logical error %.3e\n",
                label, specs.size(), weight,
                weight > 0 ? weighted_fail / weight : 0.0);
  };

  // (a) Exhaustive top-probability enumeration.
  auto top = pts::enumerate_most_likely(noisy, 1e-7, 500);
  logical_error_rate(top, "top-probability (exhaustive)");

  // (b) Probability bands: the bulk vs the tail.
  RngStream rng(7);
  pts::Options opt;
  opt.nsamples = 6000;
  opt.nshots = 500;
  opt.merge_duplicates = true;
  auto sampled = pts::sample_probabilistic(noisy, opt, rng);
  logical_error_rate(pts::filter_band(sampled, 1e-3, 1.0), "band p in [1e-3, 1]");
  logical_error_rate(pts::filter_band(sampled, 1e-7, 1e-3),
                     "band p in [1e-7, 1e-3]");

  // (c) Spatially correlated bursts: decoder stress test.
  RngStream rng2(8);
  auto correlated =
      pts::sample_spatially_correlated(noisy, opt, rng2, /*boost=*/12.0, 1);
  logical_error_rate(correlated, "correlated bursts (x12)");

  // (d) Gate-targeted injection: only two-qubit gate noise.
  RngStream rng3(9);
  pts::SiteFilter cx_only;
  cx_only.gate_name = "cx";
  auto cx_specs = pts::sample_probabilistic(noisy, opt, rng3, &cx_only);
  logical_error_rate(cx_specs, "cx-gate errors only");

  std::printf(
      "\nNote: conventional trajectory sampling can produce none of these\n"
      "conditional views without rerunning the full simulation per class.\n");
  return 0;
}
