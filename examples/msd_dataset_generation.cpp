// Generate a labelled magic-state-distillation dataset — the paper's target
// application: training data for ML-based QEC decoders, where each shot
// carries its trajectory's exact error content as a supervision label
// (information physical hardware cannot provide).
//
// Workload: the bare 5-qubit 5→1 distillation circuit (Fig. 3 of the paper)
// with depolarizing input noise. PTS pre-samples error patterns, BE collects
// shots in bulk, and the dataset is written in both CSV and binary form.
// Post-selection statistics (syndrome-accept rate per error weight) are
// printed as a sanity check of the distillation behaviour.

#include <cstdio>
#include <map>

#include "ptsbe/core/batched_execution.hpp"
#include "ptsbe/core/dataset.hpp"
#include "ptsbe/core/pts.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/distillation.hpp"

int main(int argc, char** argv) {
  using namespace ptsbe;
  const std::size_t nsamples = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 4000;
  const std::uint64_t nshots = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                        : 2000;

  // The distillation circuit with noisy magic-state inputs: depolarizing
  // noise after each input preparation gate.
  Circuit circuit = qec::bare_msd_circuit();
  NoiseModel noise;
  noise.add_gate_noise("p", channels::depolarizing(0.03));  // after T preps
  const NoisyCircuit noisy = noise.apply(circuit);
  std::printf("MSD program: %u qubits, %zu gates, %zu noise sites\n",
              circuit.num_qubits(), circuit.gate_count(), noisy.num_sites());

  RngStream rng(2025);
  pts::Options opt;
  opt.nsamples = nsamples;
  opt.nshots = nshots;
  opt.merge_duplicates = true;
  const auto specs = pts::sample_probabilistic(noisy, opt, rng);

  be::Options exec;
  const be::Result result = be::execute(noisy, specs, exec);
  std::printf("dataset: %zu trajectories, %llu labelled shots (%.2fs)\n",
              result.batches.size(),
              static_cast<unsigned long long>(result.total_shots()),
              result.prepare_seconds + result.sample_seconds);

  // Distillation acceptance vs error weight — the kind of conditional
  // statistic the provenance labels make trivial to compute.
  std::map<std::size_t, std::pair<double, double>> by_weight;  // accept, total
  for (const auto& batch : result.batches) {
    auto& [acc, tot] = by_weight[batch.spec.error_weight()];
    for (auto record : batch.records) {
      acc += qec::bare_msd_accept(record) ? 1.0 : 0.0;
      tot += 1.0;
    }
  }
  std::printf("\nerrors-in-trajectory  shots      accept-rate\n");
  for (const auto& [w, at] : by_weight)
    std::printf("  %zu                   %9.0f  %.4f\n", w, at.second,
                at.first / at.second);

  dataset::write_csv("/tmp/msd_dataset.csv", result);
  dataset::write_binary("/tmp/msd_dataset.bin", result);
  std::printf("\nwrote /tmp/msd_dataset.csv and /tmp/msd_dataset.bin\n");

  // Round-trip check.
  const auto loaded = dataset::read_binary("/tmp/msd_dataset.bin");
  std::printf("round-trip: %zu batches, %llu shots ok\n", loaded.batches.size(),
              static_cast<unsigned long long>(loaded.total_shots()));
  return 0;
}
