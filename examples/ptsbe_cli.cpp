// ptsbe_cli — the "config file / CLI selects components by name" promise of
// the registries, end to end: every pipeline stage (PTS strategy, simulator
// backend, shot budgets, devices, seed) is chosen by command-line flag and
// wired through the ptsbe::Pipeline facade. No flag maps to a type; strategy
// and backend are plain registry names, so a plugin registered at startup is
// immediately scriptable here.
//
// Workload: an n-qubit GHZ circuit with depolarizing gate noise and
// bit-flip readout noise — small enough for every backend, noisy enough for
// every strategy to have something to sample.
//
//   ptsbe_cli --list
//   ptsbe_cli --strategy band --p-min 1e-6 --p-max 1e-2 --backend mps
//   ptsbe_cli --strategy enumerate --cutoff 1e-5 --devices 8 --seed 7
//   ptsbe_cli --circuit bell.ptq --nshots 1000
//   ptsbe_cli --qec repetition --distance 5 --rounds 3
//   ptsbe_cli --compare shard_a.bin shard_b.bin --json
//   ptsbe_cli --merge merged.bin shard0.bin shard1.bin shard2.bin
//
// With --circuit the workload is read from a `.ptq` file (circuit + noise
// sites as data — see ptsbe/io/ptq.hpp) instead of the built-in GHZ demo;
// --qubits/--noise then do not apply.
//
// With --qec the workload is a QEC memory experiment (qec::make_memory_workload):
// encode, --rounds of syndrome extraction, transversal readout, with
// depolarizing gate noise of strength --noise (readout bit-flips at half
// that). The records are decoded (--decoder) and the logical error rate is
// reported with a 95% Wilson interval; --emit-ptq saves the exact noisy
// program as a `.ptq` job spec a serve::Engine tenant can submit verbatim,
// and --emit-dataset saves the labelled shots as a compare-ready PTSB shard.
//
// --compare and --merge are dataset-analytics modes (ptsbe::stats) that run
// no simulation at all: --compare tabulates two PTSB datasets out-of-core
// and reports the four BranchTab-style distances (bit-identical files give
// exactly 0 for all four); --merge recombines N spec-ordered shards into
// one dataset via the k-way merge under --merge-budget bytes of buffering.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include <vector>

#include "ptsbe/core/pipeline.hpp"
#include "ptsbe/io/ptq.hpp"
#include "ptsbe/kernels/kernel_set.hpp"
#include "ptsbe/noise/channels.hpp"
#include "ptsbe/qec/metrics.hpp"
#include "ptsbe/stats/compare.hpp"
#include "ptsbe/stats/merge.hpp"
#include "ptsbe/stats/shot_table.hpp"

namespace {

void usage(std::FILE* os, const char* argv0) {
  std::fprintf(os,
      "usage: %s [options]\n"
      "  --list                 print registered strategies/backends and exit\n"
      "  --strategy NAME        PTS strategy registry name [probabilistic]\n"
      "  --backend NAME         simulator backend registry name [statevector]\n"
      "  --schedule NAME        trajectory schedule: independent or\n"
      "                         shared-prefix (bit-identical records;\n"
      "                         overlapping preparations amortised)\n"
      "  --fuse                 fuse adjacent same-support gates before the\n"
      "                         preparation sweep (amplitude backends)\n"
      "  --kernel NAME          amplitude kernel set: scalar, avx2, avx512\n"
      "                         or auto (best this CPU supports); overrides\n"
      "                         the PTSBE_KERNEL environment variable;\n"
      "                         records are bit-identical across kernel\n"
      "                         sets [auto]\n"
      "  --circuit PATH         run the .ptq circuit file instead of the\n"
      "                         built-in GHZ demo (--qubits/--noise ignored)\n"
      "  --qec CODE             run a QEC memory experiment instead of the\n"
      "                         GHZ demo: repetition, surface or steane\n"
      "  --distance D           QEC code distance [3]\n"
      "  --rounds R             QEC syndrome-extraction rounds [2]\n"
      "  --basis B              QEC memory basis: z or x [z]\n"
      "  --decoder NAME         QEC decoder: lookup, union-find (both\n"
      "                         final-data spatial) or st-union-find\n"
      "                         (space-time, decodes the syndrome history)\n"
      "                         [st-union-find]\n"
      "  --emit-ptq PATH        save the QEC noisy program as a .ptq job\n"
      "                         spec (servable via serve::Engine)\n"
      "  --emit-dataset PATH    save the QEC labelled shots as a PTSB binary\n"
      "                         shard, ready for --compare/--merge\n"
      "  --compare A B          tabulate two PTSB datasets out-of-core and\n"
      "                         report KL divergence, chi-squared cost,\n"
      "                         Poisson log-cost and total variation\n"
      "                         (bit-identical files give exactly 0)\n"
      "  --merge OUT IN...      k-way merge N spec-ordered PTSB shards into\n"
      "                         OUT under the --merge-budget byte bound\n"
      "  --merge-budget BYTES   buffered-batch bound for --merge [67108864]\n"
      "  --view MODE            dataset access mode for --compare/--merge:\n"
      "                         auto, mmap or stream [auto]\n"
      "  --json                 emit --compare/--merge results as JSON\n"
      "  --qubits N             GHZ workload width [6]\n"
      "  --noise P              depolarizing probability per gate [0.01]\n"
      "  --nsamples N           candidate trajectory draws [2000]\n"
      "  --nshots N             shots per surviving trajectory [500]\n"
      "  --threads N            worker threads for trajectory execution\n"
      "                         (0 = hardware concurrency; records are\n"
      "                         bit-identical at every thread count) [1]\n"
      "  --devices N            simulated devices (legacy alias for the\n"
      "                         same worker pool) [1]\n"
      "  --seed S               master seed for PTS and BE [42]\n"
      "  --cutoff P             'enumerate' probability cutoff [1e-6]\n"
      "  --p-min P --p-max P    'band' probability window [0, 1]\n"
      "  --boost B --radius R   'correlated' burst parameters [4, 1]\n"
      "  --csv PATH             export the labelled shots as CSV\n"
      "  --binary PATH          export the labelled shots as PTSB binary\n",
      argv0);
}

/// Fail fast on bad registry names: report, print usage, exit 2 — before
/// any workload is built or any state allocated. Without this, a typo like
/// `--strategy probablistic` used to surface only deep inside run() (and
/// exercised none of the CLI's own output paths).
[[noreturn]] void reject(const char* argv0, const std::string& what) {
  std::fprintf(stderr, "error: %s\n\n", what.c_str());
  usage(stderr, argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ptsbe;

  std::string strategy = "probabilistic";
  std::string backend = "statevector";
  bool backend_explicit = false;
  std::string schedule = "independent";
  bool fuse = false;
  std::string kernel;
  std::string circuit_path;
  std::string qec_code;
  unsigned qec_distance = 3;
  unsigned qec_rounds = 2;
  std::string qec_basis = "z";
  std::string qec_decoder = "st-union-find";
  std::string emit_ptq_path;
  std::string emit_dataset_path;
  std::string compare_a, compare_b;
  std::string merge_out;
  std::vector<std::string> merge_inputs;
  std::uint64_t merge_budget = 64ULL << 20;
  std::string view_mode = "auto";
  bool json_output = false;
  std::string csv_path, binary_path;
  unsigned qubits = 6;
  double noise_p = 0.01;
  std::size_t threads = 1;
  std::size_t devices = 1;
  std::uint64_t seed = 42;
  pts::StrategyConfig cfg;
  cfg.nsamples = 2000;
  cfg.nshots = 500;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout, argv[0]);
      return 0;
    } else if (arg == "--list") {
      std::printf("strategies:");
      for (const auto& n : pts::StrategyRegistry::instance().names())
        std::printf(" %s", n.c_str());
      std::printf("\nbackends:  ");
      for (const auto& n : BackendRegistry::instance().names())
        std::printf(" %s", n.c_str());
      std::printf("\nkernels:    %s\n", kernels::describe_dispatch().c_str());
      return 0;
    } else if (arg == "--strategy") {
      strategy = value();
    } else if (arg == "--backend") {
      backend = value();
      backend_explicit = true;
    } else if (arg == "--schedule") {
      schedule = value();
    } else if (arg == "--fuse") {
      fuse = true;
    } else if (arg == "--kernel") {
      kernel = value();
    } else if (arg == "--circuit") {
      circuit_path = value();
    } else if (arg == "--qec") {
      qec_code = value();
    } else if (arg == "--distance") {
      qec_distance = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--rounds") {
      qec_rounds = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--basis") {
      qec_basis = value();
    } else if (arg == "--decoder") {
      qec_decoder = value();
    } else if (arg == "--emit-ptq") {
      emit_ptq_path = value();
    } else if (arg == "--emit-dataset") {
      emit_dataset_path = value();
    } else if (arg == "--compare") {
      compare_a = value();
      compare_b = value();
    } else if (arg == "--merge") {
      // --merge OUT IN... : the output path, then every following
      // non-flag argument is an input shard.
      merge_out = value();
      while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        merge_inputs.emplace_back(argv[++i]);
    } else if (arg == "--merge-budget") {
      merge_budget = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--view") {
      view_mode = value();
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--qubits") {
      qubits = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--noise") {
      noise_p = std::strtod(value(), nullptr);
    } else if (arg == "--nsamples") {
      cfg.nsamples = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--nshots") {
      cfg.nshots = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--devices") {
      devices = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--cutoff") {
      cfg.probability_cutoff = std::strtod(value(), nullptr);
    } else if (arg == "--p-min") {
      cfg.p_min = std::strtod(value(), nullptr);
    } else if (arg == "--p-max") {
      cfg.p_max = std::strtod(value(), nullptr);
    } else if (arg == "--boost") {
      cfg.boost = std::strtod(value(), nullptr);
    } else if (arg == "--radius") {
      cfg.radius = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--binary") {
      binary_path = value();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      usage(stderr, argv[0]);
      return 2;
    }
  }

  // Validate every registry-keyed flag up front, before any work happens.
  if (!pts::StrategyRegistry::instance().contains(strategy)) {
    std::string known;
    for (const auto& n : pts::StrategyRegistry::instance().names())
      known += ' ' + n;
    reject(argv[0], "unknown strategy '" + strategy +
                        "'; registered strategies:" + known);
  }
  if (!BackendRegistry::instance().contains(backend)) {
    std::string known;
    for (const auto& n : BackendRegistry::instance().names()) known += ' ' + n;
    reject(argv[0],
           "unknown backend '" + backend + "'; registered backends:" + known);
  }
  try {
    // schedule_from_string owns the name list; its message enumerates it.
    (void)be::schedule_from_string(schedule);
  } catch (const std::exception& e) {
    reject(argv[0], e.what());
  }
  if (!kernel.empty()) {
    try {
      // Binds the amplitude kernel set for the whole process; an unknown or
      // CPU-unsupported name fails fast (the message lists what exists).
      kernels::set_active(kernel);
    } catch (const std::exception& e) {
      reject(argv[0], e.what());
    }
  }
  // Dataset-analytics modes: validated and dispatched before any workload
  // machinery — they touch only PTSB bytes, never the registries.
  dataset::ViewMode view = dataset::ViewMode::kAuto;
  try {
    view = dataset::view_mode_from_string(view_mode);
  } catch (const std::exception& e) {
    reject(argv[0], e.what());
  }
  if (!compare_a.empty() && !merge_out.empty())
    reject(argv[0], "--compare and --merge are mutually exclusive");
  if (!merge_out.empty() && merge_inputs.empty())
    reject(argv[0], "--merge needs at least one input shard");
  if (!merge_out.empty()) {
    try {
      stats::MergeOptions options;
      options.memory_budget_bytes = merge_budget;
      options.view = view;
      const stats::MergeReport report =
          stats::merge_datasets(merge_out, merge_inputs, options);
      if (json_output) {
        std::printf(
            "{\"output\":\"%s\",\"inputs\":%llu,\"batches\":%llu,"
            "\"records\":%llu,\"bytes_out\":%llu,"
            "\"peak_buffered_bytes\":%llu,\"memory_budget_bytes\":%llu}\n",
            merge_out.c_str(),
            static_cast<unsigned long long>(report.inputs),
            static_cast<unsigned long long>(report.batches),
            static_cast<unsigned long long>(report.records),
            static_cast<unsigned long long>(report.bytes_out),
            static_cast<unsigned long long>(report.peak_buffered_bytes),
            static_cast<unsigned long long>(merge_budget));
      } else {
        std::printf(
            "merged %llu shards -> %s: batches=%llu records=%llu "
            "bytes=%llu peak_buffered=%llu (budget %llu)\n",
            static_cast<unsigned long long>(report.inputs), merge_out.c_str(),
            static_cast<unsigned long long>(report.batches),
            static_cast<unsigned long long>(report.records),
            static_cast<unsigned long long>(report.bytes_out),
            static_cast<unsigned long long>(report.peak_buffered_bytes),
            static_cast<unsigned long long>(merge_budget));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (!compare_a.empty()) {
    try {
      const stats::ShotTable observed = stats::table_of_file(compare_a, view);
      const stats::ShotTable expected = stats::table_of_file(compare_b, view);
      const stats::Comparison c = stats::compare(observed, expected);
      if (json_output) {
        std::printf("%s\n", stats::comparison_to_json(c).c_str());
      } else {
        std::printf("observed: %s (total=%.17g distinct=%zu)\n",
                    compare_a.c_str(), observed.total(), observed.distinct());
        std::printf("expected: %s (total=%.17g distinct=%zu)\n",
                    compare_b.c_str(), expected.total(), expected.distinct());
        std::printf("kl_divergence    = %.17g\n", c.kl_divergence);
        std::printf("chi_squared_cost = %.17g\n", c.chi_squared_cost);
        std::printf("poisson_log_cost = %.17g\n", c.poisson_log_cost);
        std::printf("total_variation  = %.17g\n", c.total_variation);
        std::printf("exact match: %s\n", c.exact_match() ? "yes" : "no");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (!emit_dataset_path.empty() && qec_code.empty())
    reject(argv[0],
           "--emit-dataset requires --qec (use --binary for the demo "
           "workloads)");
  // QEC-mode names fail fast too (the builders own the name lists).
  if (!qec_code.empty()) {
    if (!circuit_path.empty())
      reject(argv[0], "--qec and --circuit are mutually exclusive");
    if (qec_code != "repetition" && qec_code != "surface" &&
        qec_code != "steane")
      reject(argv[0], "unknown code '" + qec_code +
                          "'; known codes: repetition surface steane");
    if (qec_decoder != "lookup" && qec_decoder != "union-find" &&
        qec_decoder != "st-union-find")
      reject(argv[0],
             "unknown decoder '" + qec_decoder +
                 "'; known decoders: lookup union-find st-union-find");
    try {
      (void)qec::basis_from_string(qec_basis);
    } catch (const std::exception& e) {
      reject(argv[0], e.what());
    }
  }
  // --qec mode: build the memory workload, run it through the very same
  // pipeline flags, decode, and report the logical error rate.
  if (!qec_code.empty()) {
    try {
      qec::MemoryWorkloadConfig qcfg;
      qcfg.code = qec_code;
      qcfg.distance = qec_distance;
      qcfg.rounds = qec_rounds;
      qcfg.basis = qec::basis_from_string(qec_basis);
      qcfg.noise = noise_p;
      const qec::MemoryWorkload workload = qec::make_memory_workload(qcfg);

      if (!emit_ptq_path.empty()) {
        const std::string text = workload.to_ptq();
        std::FILE* f = std::fopen(emit_ptq_path.c_str(), "wb");
        if (f == nullptr) {
          std::fprintf(stderr, "error: cannot write %s\n",
                       emit_ptq_path.c_str());
          return 1;
        }
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("wrote %s (servable .ptq job spec)\n",
                    emit_ptq_path.c_str());
      }

      const auto decoder =
          qec::make_shot_decoder(qec_decoder, workload.experiment);
      // Clifford + Pauli-mixture workloads default to the stabilizer
      // backend; an explicit --backend still wins.
      const std::string qec_backend = backend_explicit ? backend : "stabilizer";
      BackendConfig backend_cfg;
      backend_cfg.fuse_gates = fuse;
      const RunResult run = Pipeline(workload.noisy)
                                .strategy(strategy, cfg)
                                .backend(qec_backend, backend_cfg)
                                .schedule(be::schedule_from_string(schedule))
                                .threads(threads)
                                .devices(devices)
                                .seed(seed)
                                .run();
      qec::LogicalErrorAccumulator acc(*decoder, run.weighting);
      acc.consume(run.result);

      std::printf(
          "pipeline: strategy=%s backend=%s schedule=%s%s fuse=%d "
          "threads=%zu devices=%zu seed=%llu\n",
          run.strategy.c_str(), run.backend.c_str(),
          to_string(run.schedule_executed).c_str(),
          run.schedule_fell_back() ? " (fell back from shared-prefix)" : "",
          fuse ? 1 : 0, threads, devices,
          static_cast<unsigned long long>(seed));
      std::printf(
          "qec: code=%s distance=%u rounds=%u basis=%s decoder=%s "
          "noise=%g readout=%g qubits=%u\n",
          qcfg.code.c_str(), qcfg.distance, qcfg.rounds,
          qec::to_string(qcfg.basis).c_str(), decoder->name().c_str(),
          qcfg.noise, qcfg.effective_readout_noise(),
          workload.noisy.num_qubits());
      std::printf("specs=%zu shots=%llu prep=%.3fs sample=%.3fs\n",
                  run.num_specs,
                  static_cast<unsigned long long>(run.result.total_shots()),
                  run.result.prepare_seconds, run.result.sample_seconds);
      const qec::WilsonInterval ci = acc.wilson();
      std::printf(
          "logical error rate = %.6e (95%% CI %.3e..%.3e), failures "
          "%llu/%llu, effective shots %.1f\n",
          acc.logical_error_rate(), ci.lower, ci.upper,
          static_cast<unsigned long long>(acc.failures()),
          static_cast<unsigned long long>(acc.shots()),
          acc.effective_shots());

      if (!csv_path.empty()) {
        run.to_csv(csv_path);
        std::printf("wrote %s\n", csv_path.c_str());
      }
      if (!binary_path.empty()) {
        run.to_binary(binary_path);
        std::printf("wrote %s\n", binary_path.c_str());
      }
      if (!emit_dataset_path.empty()) {
        run.to_binary(emit_dataset_path);
        std::printf("wrote %s (compare-ready PTSB shard)\n",
                    emit_dataset_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  // --circuit is validated up front too: an unreadable or malformed file
  // fails fast with usage + exit 2 (the ParseError message carries the
  // offending path:line:column), before any state is allocated.
  std::optional<NoisyCircuit> loaded;
  if (!circuit_path.empty()) {
    try {
      loaded.emplace(io::parse_circuit_file(circuit_path));
    } catch (const std::exception& e) {
      reject(argv[0], e.what());
    }
  }

  try {
    // The workload: a .ptq file when given, the GHZ demo otherwise
    // (constructed inside the try: bad --qubits/--noise values surface on
    // the same friendly error path as bad names).
    NoisyCircuit program = loaded ? std::move(*loaded) : [&] {
      Circuit circuit(qubits);
      circuit.h(0);
      for (unsigned q = 0; q + 1 < qubits; ++q) circuit.cx(q, q + 1);
      circuit.measure_all();
      NoiseModel noise;
      noise.add_all_gate_noise(channels::depolarizing(noise_p));
      noise.add_measurement_noise(channels::bit_flip(noise_p / 2));
      return noise.apply(circuit);
    }();
    // Record width: bits of measured qubits (program order), or all qubits
    // when the circuit has no measure ops (full basis-state records).
    const std::size_t measured = program.circuit().measured_qubits().size();
    const std::size_t record_bits =
        measured != 0 ? measured : program.num_qubits();

    BackendConfig backend_cfg;
    backend_cfg.fuse_gates = fuse;
    const RunResult run = Pipeline(std::move(program))
                              .strategy(strategy, cfg)
                              .backend(backend, backend_cfg)
                              .schedule(be::schedule_from_string(schedule))
                              .threads(threads)
                              .devices(devices)
                              .seed(seed)
                              .run();

    std::printf(
        "pipeline: strategy=%s backend=%s schedule=%s%s fuse=%d threads=%zu "
        "devices=%zu seed=%llu\n",
        run.strategy.c_str(), run.backend.c_str(),
        to_string(run.schedule_executed).c_str(),
        run.schedule_fell_back() ? " (fell back from shared-prefix)" : "",
        fuse ? 1 : 0, threads, devices,
        static_cast<unsigned long long>(seed));
    std::printf("specs=%zu shots=%llu prep=%.3fs sample=%.3fs\n", run.num_specs,
                static_cast<unsigned long long>(run.result.total_shots()),
                run.result.prepare_seconds, run.result.sample_seconds);

    const std::uint64_t mask =
        (record_bits >= 64) ? ~0ULL : (1ULL << record_bits) - 1;
    const be::Estimate parity = run.estimate_z_parity(mask);
    const be::Estimate p_zero =
        run.estimate_probability([](std::uint64_t r) { return r == 0; });
    std::printf("<Z...Z>        = %+.4f +/- %.4f (weight %.3e)\n", parity.value,
                parity.std_error, parity.total_weight);
    std::printf("P(all zeros)   = %+.4f +/- %.4f\n", p_zero.value,
                p_zero.std_error);

    if (!csv_path.empty()) {
      run.to_csv(csv_path);
      std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!binary_path.empty()) {
      run.to_binary(binary_path);
      std::printf("wrote %s\n", binary_path.c_str());
    }
  } catch (const std::exception& e) {
    // Unknown registry names land here with a message listing what exists.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
